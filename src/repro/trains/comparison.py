"""The Ask/Show/Want comparison mechanism (Sections 7.2 and 8).

A node ``v`` rotates through the levels of J(v).  For the current level
``j`` it samples its own train for the flagged piece I(F_j(v)), stores it
in ``Ask``, and compares it against what each neighbour ``u`` *shows* —
the broadcast slots of u's two trains:

* **synchronous mode** (Lemma 7.5): v holds the level for a full
  ask-window (one train-cycle budget); every neighbour's train is
  guaranteed to have displayed its matching piece within the window, so
  the sampling is stateless and all neighbours are compared in parallel.
* **asynchronous Want mode** (Lemma 7.6): v serves neighbours one at a
  time, filing a request in its ``Want`` register; the server delays its
  train while a displayed piece is wanted (a constant delay per node), so
  a slow reader never misses a piece.  An intentionally serialized
  variant ("simple") reproduces the O(Delta^2 log^3 n) handshake the
  paper describes first.

When the events E(v, u, j) occur the verifier applies the minimality
checks of Section 8:

* **C1** — if v is the endpoint of the candidate edge (v, u0) of F_j(v):
  u0 must lie outside F_j(v) and the candidate's weight must equal the
  claimed minimum omega(F_j(v));
* **C2** — for every outgoing edge (v, u): omega(F_j(v)) <= w(v, u);
* **piece agreement** (Claim 8.3) — neighbours inside the same fragment
  must show the identical piece.

Like the trains, the component resolves every register it touches to a
handle once (:meth:`ComparisonComponent.bind_registers`) — a name string
on dict storage, an integer slot under a compiled register schema.
"""

from __future__ import annotations

import struct
from array import array
from typing import Any, List, Optional, Tuple

from ..labels.registers import (REG_DELIM, REG_ENDP, REG_JMASK,
                                REG_PARENT_ID, REG_PARENTS, REG_ROOTS)
from ..labels.strings import ENDP_DOWN, ENDP_UP
from ..labels.wellforming import sorted_levels
from ..sim.columnar import BOX_S, NONE_S, PoolColumn, SENT_CEIL
from ..sim.npcolumnar import (IDX_NOT, IDX_ODD, SHOW_NONE, WL_NEVER,
                              WL_ODD, PoolIdCache, csr_take, idx_of,
                              seg_any, view64)
from ..sim.registers import NO_DECODE, handle_resolver
from .budgets import Budgets
from .train import (TrainComponent, TrainObservation, decode_observation,
                    valid_piece, _nat, _NAT_CAP)

#: comparison modes
MODE_SYNC_WINDOW = "sync-window"
MODE_WANT = "want"
MODE_WANT_SIMPLE = "want-simple"

#: ghost instrumentation: completed full Ask rotations at a node.
REG_ROT = "_rot"


def rotation_settled(network, min_rotations: int = 1,
                     base: Optional[dict] = None) -> bool:
    """Steady-state predicate over the ``_rot`` ghost instrumentation
    written by :meth:`ComparisonComponent._advance`: every node has
    completed ``min_rotations`` full Ask rotations (beyond its ``base``
    count, when given), or some node already raised an alarm.

    The single definition of "the verifier has settled" — the detection
    harness, the campaign engine, and the self-stabilization transformer
    all key off it.
    """
    if network.has_alarm():
        return True
    store = getattr(network, "columns", None)
    if store is not None and REG_ROT in network.schema.slots:
        from ..sim.columnar import SENT_CEIL
        rot = network.schema.slots[REG_ROT]
        # nat column: the common entries are plain counter ints; the
        # sentinel-coded ones (unwritten, None, boxed adversarial junk)
        # resolve through get_value and apply the exact dict-backend
        # expression, so "missing counts as 0" — and even the TypeError
        # a non-int count raises — match across storages
        col = store.data[rot]
        nodes = store.nodes
        for i, v in enumerate(col):
            if nodes[i] is None:
                continue  # freelist-parked row (node crashed out)
            if v <= SENT_CEIL:
                raw = store.get_value(i, rot)
                v = (0 if raw is None else raw) or 0
            floor = min_rotations if base is None \
                else base.get(nodes[i], 0) + min_rotations
            if v < floor:
                return False
        return True
    files = network.files
    if files is not None and REG_ROT in network.schema.slots:
        from ..sim.registers import UNSET
        rot = network.schema.slots[REG_ROT]
        if base is None:
            for f in files.values():
                v = f.slots[rot]
                if ((0 if v is UNSET else v) or 0) < min_rotations:
                    return False
            return True
        for v, f in files.items():
            r = f.slots[rot]
            if ((0 if r is UNSET else r) or 0) < \
                    base.get(v, 0) + min_rotations:
                return False
        return True
    if base is None:
        return all((regs.get(REG_ROT) or 0) >= min_rotations
                   for regs in network.registers.values())
    return all((regs.get(REG_ROT) or 0) >= base.get(v, 0) + min_rotations
               for v, regs in network.registers.items())

REG_ASK = "cmp_ask"          # the piece currently exposed for comparison
REG_ASK_IDX = "cmp_idx"      # index into J(v) of the current level
REG_ASK_WAIT = "cmp_wait"    # synchronous hold-down counter
REG_ASK_WD = "cmp_wd"        # progress watchdog
REG_WANT = "cmp_want"        # (server, level) request (asynchronous)
REG_ASK_NBR = "cmp_nbr"      # which neighbour is being served (async)
REG_SVC_WD = "cmp_svc"       # per-service watchdog (async)
REG_TURN = "cmp_turn"        # server round-robin pointer ("simple" mode)

#: (name, kind, init-default); ``_rot`` is declared but not initialized
#: (the settle predicate treats missing as 0, matching dict storage).
#: ``Ask``/``Want`` hold tuples (a piece; a ``(server, level)``
#: request), declared so a columnar store interns them.
_CMP_DECLS = (
    (REG_ASK, "tuple", None),
    (REG_ASK_IDX, "nat", 0),
    (REG_ASK_WAIT, "nat", 0),
    (REG_ASK_WD, "nat", 0),
    (REG_WANT, "tuple", None),
    (REG_ASK_NBR, "nat", 0),
    (REG_SVC_WD, "nat", 0),
    (REG_TURN, "nat", 0),
)


class ComparisonComponent:
    """Per-node comparison logic over two train components.

    ``only_top`` restricts the Ask rotation to the node's top levels —
    used by the hybrid scheme of :mod:`repro.verification.hybrid`, which
    verifies bottom levels locally from replicated pieces.
    """

    def __init__(self, top: TrainComponent, bottom: TrainComponent,
                 mode: str, only_top: bool = False) -> None:
        if mode not in (MODE_SYNC_WINDOW, MODE_WANT, MODE_WANT_SIMPLE):
            raise ValueError(f"unknown comparison mode {mode!r}")
        self.top = top
        self.bottom = bottom
        self.mode = mode
        self.only_top = only_top
        self.bind_registers(None)

    def declare_registers(self, schema) -> None:
        schema.declare_many(_CMP_DECLS)
        schema.declare(REG_ROT, "nat", None)

    def bind_registers(self, compiled) -> None:
        resolve = handle_resolver(compiled)
        self.h_ask = resolve(REG_ASK)
        self.h_idx = resolve(REG_ASK_IDX)
        self.h_wait = resolve(REG_ASK_WAIT)
        self.h_wd = resolve(REG_ASK_WD)
        self.h_want = resolve(REG_WANT)
        self.h_nbr = resolve(REG_ASK_NBR)
        self.h_svc = resolve(REG_SVC_WD)
        self.h_turn = resolve(REG_TURN)
        self.h_rot = resolve(REG_ROT)
        self.h_jmask = resolve(REG_JMASK)
        self.h_delim = resolve(REG_DELIM)
        self.h_endp = resolve(REG_ENDP)
        self.h_pid = resolve(REG_PARENT_ID)
        self.h_parents = resolve(REG_PARENTS)
        self.h_roots = resolve(REG_ROOTS)
        self._init_pairs = tuple(
            (resolve(name), default) for name, _kind, default in _CMP_DECLS)
        # label-derived cache: node -> (sentinel, levels, {level: u0})
        # (register files/columns only; invalidated when the stable
        # sentinel moves)
        self._label_cache = {}
        self._cur_cands = None

    def _levels(self, ctx) -> List[int]:
        levels = sorted_levels(ctx.nat(self.h_jmask) or 0)
        if self.only_top:
            delim = ctx.nat(self.h_delim) or 0
            levels = levels[delim:]
        return levels

    # ------------------------------------------------------------------
    def init_node(self, ctx) -> None:
        for handle, default in self._init_pairs:
            ctx.set(handle, default)

    # ------------------------------------------------------------------
    # what the servers must hold (queried by the verifier before the
    # trains' broadcast steps)
    # ------------------------------------------------------------------
    def held_levels(self, ctx) -> Tuple[Optional[int], Optional[int]]:
        """(top_level, bottom_level) this node must keep displayed."""
        if self.mode == MODE_SYNC_WINDOW:
            return (None, None)
        me = ctx.node
        serve_only = None
        if self.mode == MODE_WANT_SIMPLE:
            nbrs = ctx.neighbors
            if nbrs:
                turn = (ctx.nat(self.h_turn) or 0) % len(nbrs)
                serve_only = nbrs[turn]
        held_top = held_bot = None
        for train, attr in ((self.top, 0), (self.bottom, 1)):
            show = train.own_show(ctx)
            if show is None or not show.flag:
                continue
            lvl = show.piece[1]
            for u in ctx.neighbors:
                if serve_only is not None and u != serve_only:
                    continue
                want = ctx.read(u, self.h_want)
                if isinstance(want, tuple) and len(want) == 2 and \
                        want[0] == me and want[1] == lvl:
                    if attr == 0:
                        held_top = lvl
                    else:
                        held_bot = lvl
        return (held_top, held_bot)

    def serve_turn(self, ctx) -> None:
        """Advance the round-robin pointer ("simple" server side)."""
        if self.mode != MODE_WANT_SIMPLE:
            return
        nbrs = ctx.neighbors
        if not nbrs:
            return
        turn = (ctx.nat(self.h_turn) or 0) % len(nbrs)
        current = nbrs[turn]
        want = ctx.read(current, self.h_want)
        if not (isinstance(want, tuple) and len(want) == 2
                and want[0] == ctx.node):
            ctx.set(self.h_turn, (turn + 1) % len(nbrs))

    # ------------------------------------------------------------------
    # main step
    # ------------------------------------------------------------------
    def step(self, ctx, budgets: Budgets,
             sentinel: Optional[int] = None) -> List[str]:
        if sentinel is not None:
            ent = self._label_cache.get(ctx.node)
            if ent is None or ent[0] != sentinel:
                ent = (sentinel, self._levels(ctx), {})
                self._label_cache[ctx.node] = ent
            levels = ent[1]
            self._cur_cands = ent[2]
        else:
            levels = self._levels(ctx)
            self._cur_cands = None
        alarms: List[str] = []
        if not levels:
            return alarms

        wd = (ctx.nat(self.h_wd) or 0) + 1
        ctx.set(self.h_wd, wd)
        if wd > budgets.ask_alarm:
            alarms.append("ask: no comparison progress within budget")
            ctx.set(self.h_wd, 0)

        ask = ctx.get(self.h_ask)
        if ask is not None and not valid_piece(ask):
            ctx.set(self.h_ask, None)
            ask = None

        if ask is None:
            self._try_acquire(ctx, levels, budgets, alarms)
            return alarms

        if self.mode == MODE_SYNC_WINDOW:
            self._sync_compare_all(ctx, ask, alarms)
            wait = ctx.nat(self.h_wait) or 0
            if wait <= 1:
                self._advance(ctx, levels)
            else:
                ctx.set(self.h_wait, wait - 1)
        else:
            self._async_serve_one(ctx, ask, budgets, alarms, levels)
        return alarms

    # ------------------------------------------------------------------
    def _target_level(self, ctx, levels: List[int]) -> int:
        idx = (ctx.nat(self.h_idx) or 0) % len(levels)
        return levels[idx]

    def _advance(self, ctx, levels: List[int]) -> None:
        idx = (ctx.nat(self.h_idx) or 0) % len(levels)
        if idx + 1 >= len(levels):
            # ghost instrumentation: completed full Ask rotations
            ctx.set(self.h_rot, (ctx.get(self.h_rot) or 0) + 1)
        ctx.set(self.h_idx, (idx + 1) % len(levels))
        ctx.set(self.h_ask, None)
        ctx.set(self.h_wait, 0)
        ctx.set(self.h_want, None)
        ctx.set(self.h_nbr, 0)
        ctx.set(self.h_svc, 0)
        ctx.set(self.h_wd, 0)

    def _try_acquire(self, ctx, levels: List[int], budgets: Budgets,
                     alarms: List[str]) -> None:
        """Sample the node's own trains for the target level's piece."""
        target = self._target_level(ctx, levels)
        for train in (self.top, self.bottom):
            show = train.own_show(ctx)
            if show is not None and show.flag and show.piece[1] == target:
                ctx.set(self.h_ask, show.piece)
                ctx.set(self.h_wait, budgets.ask_window)
                ctx.set(self.h_nbr, 0)
                ctx.set(self.h_svc, 0)
                alarms.extend(self._on_acquire_checks(ctx, show.piece))
                return

    # ------------------------------------------------------------------
    # checks at acquisition time (no neighbour info needed)
    # ------------------------------------------------------------------
    _MISS = object()

    def _candidate_neighbor(self, ctx, level: int) -> Optional[int]:
        """The other endpoint of the candidate edge of F_level(v), when v
        is the endpoint; None otherwise.

        A pure function of the labels in the closed neighbourhood —
        memoized per level under register files (``self._cur_cands`` is
        the sentinel-validated cache installed by :meth:`step`)."""
        cands = self._cur_cands
        if cands is not None:
            hit = cands.get(level, self._MISS)
            if hit is not self._MISS:
                return hit
            u0 = self._candidate_neighbor_uncached(ctx, level)
            cands[level] = u0
            return u0
        return self._candidate_neighbor_uncached(ctx, level)

    def _candidate_neighbor_uncached(self, ctx, level: int) -> Optional[int]:
        endp = ctx.get(self.h_endp)
        if not isinstance(endp, str) or level >= len(endp):
            return None
        if endp[level] == ENDP_UP:
            pid = ctx.get(self.h_pid)
            return pid if pid in ctx.neighbors else None
        if endp[level] == ENDP_DOWN:
            h_pid = self.h_pid
            h_parents = self.h_parents
            me = ctx.node
            read = ctx.read
            for c in ctx.neighbors:
                if read(c, h_pid) != me:
                    continue
                cp = read(c, h_parents)
                if isinstance(cp, str) and level < len(cp) and cp[level] == "1":
                    return c
        return None

    def _on_acquire_checks(self, ctx, piece) -> List[str]:
        alarms: List[str] = []
        z, level, weight = piece
        roots = ctx.get(self.h_roots)
        if isinstance(roots, str) and level < len(roots):
            if roots[level] == "1" and z != ctx.node:
                alarms.append("ask: fragment root id differs from the piece")
        u0 = self._candidate_neighbor(ctx, level)
        if u0 is not None:
            # C1 (weight half): the claimed minimum must be the candidate's
            # actual weight.
            if weight is None or weight != ctx.weight(u0):
                alarms.append("C1: claimed minimum differs from the "
                              "candidate edge weight")
        return alarms

    # ------------------------------------------------------------------
    # the event E(v, u, j): compare my piece against what u shows
    # ------------------------------------------------------------------
    def _neighbor_piece(self, ctx, u, level) -> Optional[TrainObservation]:
        read_decoded = ctx.read_decoded
        for train in (self.top, self.bottom):
            obs = read_decoded(u, train.h_bbuf, decode_observation)
            if obs is not None and obs.flag and obs.piece[1] == level:
                return obs
        return None

    def _compare_with(self, ctx, ask, u, obs: Optional[TrainObservation],
                      u_has_level: bool, alarms: List[str]) -> bool:
        """Run C1/C2/agreement for one neighbour; True when the event
        happened (info was available)."""
        z, level, weight = ask
        u0 = self._candidate_neighbor(ctx, level)
        if not u_has_level:
            # u is in no level-j fragment: the edge is outgoing.
            self._outgoing_checks(ctx, ask, u, u0, alarms)
            return True
        if obs is None:
            return False
        if obs.piece[0] == z:
            # same claimed fragment: members must agree on the piece
            if tuple(obs.piece) != tuple(ask):
                alarms.append("AGREE: same fragment, different piece "
                              "(Claim 8.3)")
            if u0 == u:
                alarms.append("C1: candidate edge is internal to its "
                              "fragment")
        else:
            self._outgoing_checks(ctx, ask, u, u0, alarms)
        return True

    def _outgoing_checks(self, ctx, ask, u, u0, alarms: List[str]) -> None:
        _z, _level, weight = ask
        edge_w = ctx.weight(u)
        if weight is None:
            alarms.append("C2: the whole-tree fragment has an outgoing edge")
            return
        try:
            violated = edge_w < weight
        except TypeError:
            alarms.append("C2: incomparable weights in piece")
            return
        if violated:
            alarms.append("C2: outgoing edge lighter than the claimed "
                          "minimum")

    # ------------------------------------------------------------------
    # synchronous window sampling (Section 7.2.1)
    # ------------------------------------------------------------------
    def _sync_compare_all(self, ctx, ask, alarms: List[str]) -> None:
        level = ask[1]
        bit = 1 << level
        h_jmask = self.h_jmask
        for u in ctx.neighbors:
            jmask_u = ctx.read_nat(u, h_jmask)
            u_has = jmask_u is not None and bool(jmask_u & bit)
            obs = self._neighbor_piece(ctx, u, level) if u_has else None
            self._compare_with(ctx, ask, u, obs, u_has, alarms)

    # ------------------------------------------------------------------
    # asynchronous Want mode (Section 7.2.2)
    # ------------------------------------------------------------------
    def _async_serve_one(self, ctx, ask, budgets: Budgets,
                         alarms: List[str], levels: List[int]) -> None:
        level = ask[1]
        nbrs = ctx.neighbors
        idx = ctx.nat(self.h_nbr) or 0
        if idx >= len(nbrs):
            self._advance(ctx, levels)
            return
        u = nbrs[idx]
        jmask_u = ctx.read_nat(u, self.h_jmask)
        u_has = jmask_u is not None and bool(jmask_u & (1 << level))
        if not u_has:
            self._compare_with(ctx, ask, u, None, False, alarms)
            self._next_neighbor(ctx, idx)
            return
        # In the "simple" variant the client files its request just the
        # same, but the server honours one client at a time (round robin),
        # which is what makes that variant Delta^2.
        obs = self._neighbor_piece(ctx, u, level)
        if obs is not None:
            self._compare_with(ctx, ask, u, obs, True, alarms)
            ctx.set(self.h_want, None)
            self._next_neighbor(ctx, idx)
            return
        ctx.set(self.h_want, (u, level))
        svc = (ctx.nat(self.h_svc) or 0) + 1
        ctx.set(self.h_svc, svc)
        scale = max(1, ctx.degree) if self.mode == MODE_WANT_SIMPLE else 1
        if svc > budgets.service * scale:
            alarms.append("WANT: server never displayed the requested piece")
            ctx.set(self.h_want, None)
            self._next_neighbor(ctx, idx)

    def _next_neighbor(self, ctx, idx: int) -> None:
        ctx.set(self.h_nbr, idx + 1)
        ctx.set(self.h_svc, 0)

    # ------------------------------------------------------------------
    # the bulk-activation plane (repro.sim.bulk)
    # ------------------------------------------------------------------
    def make_bulk_sync(self, ops):
        """A column-fused variant of :meth:`step` for the synchronous
        window mode, for the bulk plane.

        The Ask/Show comparison is the verifier's read-mostliest phase:
        per held level it reads every neighbour's J-mask and broadcast
        slots and writes only its own watchdog/wait counters.  The
        fused closure inlines those reads to direct (snapshot) column
        indexing — pooled observations resolve through the shared
        per-pool-id decode memo, edge weights through a per-node map
        built once per ops — while the infrequent transitions
        (acquire, advance, candidate lookup) stay on the scalar
        helpers.  Same control flow, same junk coercions, same writes
        in the same order as :meth:`step`; write-tracking contract as
        in :meth:`TrainComponent.make_bulk_step`.  Returns None unless
        the mode is sync-window and the layout is the expected columnar
        one (callers then fall back to the scalar :meth:`step`).
        """
        if self.mode != MODE_SYNC_WINDOW or \
                not getattr(ops, "fused", False) or \
                type(self.h_ask) is not int:
            return None
        store = ops.store
        snap = ops.snap
        data = store.data
        sdata = snap.data
        h_ask, h_wd, h_wait = self.h_ask, self.h_wd, self.h_wait
        h_jmask = self.h_jmask
        h_tb, h_bb = self.top.h_bbuf, self.bottom.h_bbuf
        stable = store.schema.stable_mask
        if type(data[h_ask]) is not PoolColumn or \
                any(type(data[h]) is not array for h in (h_wd, h_wait)) \
                or type(sdata[h_jmask]) is not array or \
                any(type(sdata[h]) is not PoolColumn
                    for h in (h_tb, h_bb)) or \
                any(stable[h] for h in (h_ask, h_wd, h_wait)):
            return None
        ask_col, wd_col, wait_col = data[h_ask], data[h_wd], data[h_wait]
        s_jmask, s_tb, s_bb = sdata[h_jmask], sdata[h_tb], sdata[h_bb]
        pool = store.pool_values
        overflow = store.overflow
        soverflow = snap.overflow
        none_decode = store.none_decode  # shared with the snapshot
        memos = store.decode_memo        # shared with the snapshot
        memo_for = store.memo_for
        dc = store.dirty_cols
        cache = self._label_cache
        # fused nat writes via the store's canonical writer closures
        # (one source of truth for the array-write encoding)
        w_wd = store.make_nat_writer(h_wd)
        w_wait = store.make_nat_writer(h_wait)
        #: per-node neighbour-weight maps (topology is immutable, so
        #: caching edge weights for the closure's lifetime is pure)
        weight_maps: dict = {}
        MISS = self._MISS

        def fused(ctx, budgets, sentinel):
            i = ctx._i
            node = ctx.node
            ent = cache.get(node)
            if ent is None or ent[0] != sentinel:
                ent = (sentinel, self._levels(ctx), {})
                cache[node] = ent
            levels = ent[1]
            cands = ent[2]
            self._cur_cands = cands
            alarms: List[str] = []
            if not levels:
                return alarms
            v = wd_col[i]
            wd = (v if 0 <= v <= _NAT_CAP else 0) + 1
            w_wd(i, wd)
            if wd > budgets.ask_alarm:
                alarms.append("ask: no comparison progress within budget")
                w_wd(i, 0)
            v = ask_col[i]
            ask = pool[v] if v > SENT_CEIL else (
                overflow[h_ask][i] if v == BOX_S else None)
            if ask is not None and not valid_piece(ask):
                ovf = overflow[h_ask]
                if ovf:
                    ovf.pop(i, None)
                ask_col[i] = NONE_S
                dc[h_ask] = 1
                ask = None
            if ask is None:
                self._try_acquire(ctx, levels, budgets, alarms)
                return alarms
            # -- _sync_compare_all, inlined -----------------------------
            z, level, weight = ask
            bit = 1 << level
            u0 = cands.get(level, MISS)
            if u0 is MISS:
                u0 = self._candidate_neighbor_uncached(ctx, level)
                cands[level] = u0
            wmap = weight_maps.get(node)
            if wmap is None:
                wmap = weight_maps[node] = {
                    u: ctx.weight(u) for u in ctx.neighbors}
            nbrs = ctx.neighbors
            nbr_idx = ctx._nbr_idx
            for k in range(len(nbrs)):
                u = nbrs[k]
                j = nbr_idx[k]
                v = s_jmask[j]
                if 0 <= v <= _NAT_CAP and v & bit:
                    # u claims the level: find its displayed piece
                    # (_neighbor_piece over both trains' slots)
                    obs = None
                    for s_col, h in ((s_tb, h_tb), (s_bb, h_bb)):
                        v2 = s_col[j]
                        if v2 >= 0:
                            m = memos[h]
                            try:
                                d = m[v2]
                            except (TypeError, IndexError):
                                d = NO_DECODE
                            if d is NO_DECODE:
                                d = decode_observation(pool[v2])
                                memo_for(h, v2)[v2] = d
                        elif v2 == BOX_S:
                            d = decode_observation(soverflow[h][j])
                        else:
                            d = none_decode[h]
                            if d is NO_DECODE:
                                d = none_decode[h] = \
                                    decode_observation(None)
                        if d is not None and d.flag and \
                                d.piece[1] == level:
                            obs = d
                            break
                    if obs is None:
                        continue        # no event for this neighbour
                    if obs.piece[0] == z:
                        if tuple(obs.piece) != tuple(ask):
                            alarms.append("AGREE: same fragment, "
                                          "different piece (Claim 8.3)")
                        if u0 == u:
                            alarms.append("C1: candidate edge is "
                                          "internal to its fragment")
                        continue
                # the edge is outgoing (_outgoing_checks)
                if weight is None:
                    alarms.append("C2: the whole-tree fragment has an "
                                  "outgoing edge")
                    continue
                try:
                    violated = wmap[u] < weight
                except TypeError:
                    alarms.append("C2: incomparable weights in piece")
                    continue
                if violated:
                    alarms.append("C2: outgoing edge lighter than the "
                                  "claimed minimum")
            v = wait_col[i]
            wait = v if 0 <= v <= _NAT_CAP else 0
            if wait <= 1:
                self._advance(ctx, levels)
            else:
                w_wait(i, wait - 1)
            return alarms

        return fused

    def make_bulk_want(self, ops):
        """A column-fused variant of :meth:`step` for the asynchronous
        Want mode, for the bulk plane — the kernel that takes the
        comparison mechanism off the synchronous-only fused path.

        Same shape as :meth:`make_bulk_sync`, generalized to gather
        from whatever column store the ops designate: under the
        synchronous fusion license ``ops.snap`` is the round snapshot;
        under the asynchronous *conflict-free* license the scheduler
        passes ``snap=store``, so the very same closure reads
        neighbours live — which the license makes unobservable (no
        batchmate is within the closed-neighbourhood radius).  The hot
        serve-one body (neighbour J-mask, displayed-piece lookup
        through the shared decode memo, the ``Want`` filing and service
        watchdog) is inlined to direct column indexing; the infrequent
        transitions (acquire, advance, candidate lookup) stay on the
        scalar helpers.  Same control flow, same junk coercions, same
        writes in the same order as :meth:`step`; write-tracking
        contract as in :meth:`TrainComponent.make_bulk_step`.  Returns
        None unless the mode is ``want`` or the serialized
        ``want-simple`` ablation (whose only client-side difference is
        the degree-scaled service budget) and the layout is the
        expected columnar one.
        """
        if self.mode not in (MODE_WANT, MODE_WANT_SIMPLE) or \
                not getattr(ops, "fused", False) or \
                type(self.h_ask) is not int:
            return None
        simple = self.mode == MODE_WANT_SIMPLE
        store = ops.store
        snap = ops.snap
        data = store.data
        sdata = snap.data
        h_ask, h_wd, h_want = self.h_ask, self.h_wd, self.h_want
        h_nbr, h_svc = self.h_nbr, self.h_svc
        h_jmask = self.h_jmask
        h_tb, h_bb = self.top.h_bbuf, self.bottom.h_bbuf
        stable = store.schema.stable_mask
        if type(data[h_ask]) is not PoolColumn or \
                type(data[h_want]) is not PoolColumn or \
                any(type(data[h]) is not array
                    for h in (h_wd, h_nbr, h_svc)) or \
                type(sdata[h_jmask]) is not array or \
                any(type(sdata[h]) is not PoolColumn
                    for h in (h_tb, h_bb)) or \
                any(stable[h] for h in (h_ask, h_want, h_wd, h_nbr,
                                        h_svc)):
            return None
        ask_col, want_col, wd_col = data[h_ask], data[h_want], data[h_wd]
        nbr_col, svc_col = data[h_nbr], data[h_svc]
        s_jmask, s_tb, s_bb = sdata[h_jmask], sdata[h_tb], sdata[h_bb]
        pool = store.pool_values
        overflow = store.overflow
        soverflow = snap.overflow
        none_decode = store.none_decode  # shared with the snapshot
        memos = store.decode_memo        # shared with the snapshot
        memo_for = store.memo_for
        intern = store.intern
        dc = store.dirty_cols
        cache = self._label_cache
        w_wd = store.make_nat_writer(h_wd)
        w_nbr = store.make_nat_writer(h_nbr)
        w_svc = store.make_nat_writer(h_svc)
        #: per-node neighbour-weight maps (static topology; see
        #: make_bulk_sync)
        weight_maps: dict = {}
        MISS = self._MISS

        def _w_want(i, val):
            # the pooled branch of ctx.set for the Want register (a
            # well-formed (server, level) tuple or None — both
            # internable, so no unhashable branch is needed here)
            ovf = overflow[h_want]
            if ovf:
                ovf.pop(i, None)
            want_col[i] = NONE_S if val is None else intern(val)
            dc[h_want] = 1

        def _obs_at(j, s_col, h, level):
            # _neighbor_piece's per-train half: u's displayed piece at
            # ``level``, through the shared per-pool-id decode memo
            v = s_col[j]
            if v >= 0:
                m = memos[h]
                try:
                    d = m[v]
                except (TypeError, IndexError):
                    d = NO_DECODE
                if d is NO_DECODE:
                    d = decode_observation(pool[v])
                    memo_for(h, v)[v] = d
            elif v == BOX_S:
                d = decode_observation(soverflow[h][j])
            else:
                d = none_decode[h]
                if d is NO_DECODE:
                    d = none_decode[h] = decode_observation(None)
            if d is not None and d.flag and d.piece[1] == level:
                return d
            return None

        def fused(ctx, budgets, sentinel):
            i = ctx._i
            node = ctx.node
            ent = cache.get(node)
            if ent is None or ent[0] != sentinel:
                ent = (sentinel, self._levels(ctx), {})
                cache[node] = ent
            levels = ent[1]
            cands = ent[2]
            self._cur_cands = cands
            alarms: List[str] = []
            if not levels:
                return alarms
            v = wd_col[i]
            wd = (v if 0 <= v <= _NAT_CAP else 0) + 1
            w_wd(i, wd)
            if wd > budgets.ask_alarm:
                alarms.append("ask: no comparison progress within budget")
                w_wd(i, 0)
            v = ask_col[i]
            ask = pool[v] if v > SENT_CEIL else (
                overflow[h_ask][i] if v == BOX_S else None)
            if ask is not None and not valid_piece(ask):
                ovf = overflow[h_ask]
                if ovf:
                    ovf.pop(i, None)
                ask_col[i] = NONE_S
                dc[h_ask] = 1
                ask = None
            if ask is None:
                self._try_acquire(ctx, levels, budgets, alarms)
                return alarms
            # -- _async_serve_one, inlined ------------------------------
            z, level, weight = ask
            nbrs = ctx.neighbors
            v = nbr_col[i]
            idx = v if 0 < v <= _NAT_CAP else 0
            if idx >= len(nbrs):
                self._advance(ctx, levels)
                return alarms
            u = nbrs[idx]
            j = ctx._nbr_idx[idx]
            v = s_jmask[j]
            obs = None
            if 0 <= v <= _NAT_CAP and v & (1 << level):
                # u claims the level: look for its displayed piece
                obs = _obs_at(j, s_tb, h_tb, level) or \
                    _obs_at(j, s_bb, h_bb, level)
                if obs is None:
                    # no event yet: file the Want, bump the service
                    # watchdog, alarm on a starving server
                    _w_want(i, (u, level))
                    v = svc_col[i]
                    svc = (v if 0 <= v <= _NAT_CAP else 0) + 1
                    w_svc(i, svc)
                    scale = max(1, ctx.degree) if simple else 1
                    if svc > budgets.service * scale:
                        alarms.append("WANT: server never displayed the "
                                      "requested piece")
                        _w_want(i, None)
                        w_nbr(i, idx + 1)
                        w_svc(i, 0)
                    return alarms
            # the event E(v, u, level): _compare_with, inlined
            u0 = cands.get(level, MISS)
            if u0 is MISS:
                u0 = self._candidate_neighbor_uncached(ctx, level)
                cands[level] = u0
            if obs is not None and obs.piece[0] == z:
                if tuple(obs.piece) != tuple(ask):
                    alarms.append("AGREE: same fragment, different piece "
                                  "(Claim 8.3)")
                if u0 == u:
                    alarms.append("C1: candidate edge is internal to its "
                                  "fragment")
            else:
                # u outside the fragment (or outside the level):
                # _outgoing_checks
                wmap = weight_maps.get(node)
                if wmap is None:
                    wmap = weight_maps[node] = {
                        w: ctx.weight(w) for w in nbrs}
                if weight is None:
                    alarms.append("C2: the whole-tree fragment has an "
                                  "outgoing edge")
                else:
                    try:
                        violated = wmap[u] < weight
                    except TypeError:
                        alarms.append("C2: incomparable weights in piece")
                        violated = False
                    if violated:
                        alarms.append("C2: outgoing edge lighter than "
                                      "the claimed minimum")
            if obs is not None:
                _w_want(i, None)
            w_nbr(i, idx + 1)
            w_svc(i, 0)
            return alarms

        return fused

    def make_bulk_held(self, ops):
        """A column-fused :meth:`held_levels` for the Want mode — the
        per-activation scan every verifier step performs before its
        trains move (which neighbours filed a Want for a piece this
        node currently displays).  Own broadcast slots decode through
        the shared per-pool-id memo; the neighbours' ``Want`` registers
        gather straight off the designated column store (the round
        snapshot under the synchronous ablation, the live columns under
        the conflict-free asynchronous license).  Exact transcription
        of the scalar scan — including the ``want-simple`` server's
        round-robin filter, which reads only the neighbour whose turn
        it is; returns None unless the mode is ``want`` /
        ``want-simple`` and the layout is the expected columnar one.
        """
        if self.mode not in (MODE_WANT, MODE_WANT_SIMPLE) or \
                not getattr(ops, "fused", False) or \
                type(self.h_want) is not int:
            return None
        simple = self.mode == MODE_WANT_SIMPLE
        store = ops.store
        snap = ops.snap
        data = store.data
        sdata = snap.data
        h_want = self.h_want
        h_turn = self.h_turn
        h_tb, h_bb = self.top.h_bbuf, self.bottom.h_bbuf
        if type(sdata[h_want]) is not PoolColumn or \
                any(type(data[h]) is not PoolColumn for h in (h_tb, h_bb)) \
                or (simple and type(data[h_turn]) is not array):
            return None
        turn_col = data[h_turn]
        s_want = sdata[h_want]
        tb_col, bb_col = data[h_tb], data[h_bb]
        pool = store.pool_values
        overflow = store.overflow
        soverflow = snap.overflow
        none_decode = store.none_decode
        memos = store.decode_memo
        memo_for = store.memo_for

        def held(ctx):
            # scan the neighbours' Want column first: a node is asked
            # to hold only when some neighbour's request names it, and
            # most activations find none — skipping the own-show
            # decodes entirely.  held_x = lvl iff (some neighbour wants
            # (me, lvl)) and (train x's own show is flagged at lvl) —
            # the same conjunction the scalar scan evaluates, with the
            # quantifiers commuted.
            i = ctx._i
            me = ctx.node
            if simple and ctx.neighbors:
                # the simple server honours one client per turn: only
                # that neighbour's request can hold a level (the same
                # nat coercion ctx.nat applies, inlined)
                v = turn_col[i]
                if v > SENT_CEIL:
                    t = v if 0 <= v <= _NAT_CAP else 0
                elif v == BOX_S:
                    x = overflow[h_turn][i]
                    t = x if (isinstance(x, int)
                              and not isinstance(x, bool)
                              and 0 <= x <= _NAT_CAP) else 0
                else:
                    t = 0
                scan = (ctx._nbr_idx[t % len(ctx.neighbors)],)
            else:
                scan = ctx._nbr_idx
            wanted = None
            for j in scan:
                v2 = s_want[j]
                want = pool[v2] if v2 > SENT_CEIL else (
                    soverflow[h_want][j] if v2 == BOX_S else None)
                if isinstance(want, tuple) and len(want) == 2 and \
                        want[0] == me:
                    # a list, not a set: an adversarial want level may
                    # be unhashable, and ``in`` must compare with ==
                    # exactly like the scalar scan
                    if wanted is None:
                        wanted = [want[1]]
                    else:
                        wanted.append(want[1])
            if wanted is None:
                return (None, None)
            held_top = held_bot = None
            for col, h, attr in ((tb_col, h_tb, 0), (bb_col, h_bb, 1)):
                v = col[i]
                if v >= 0:
                    m = memos[h]
                    try:
                        show = m[v]
                    except (TypeError, IndexError):
                        show = NO_DECODE
                    if show is NO_DECODE:
                        show = decode_observation(pool[v])
                        memo_for(h, v)[v] = show
                elif v == BOX_S:
                    show = decode_observation(overflow[h][i])
                else:
                    show = none_decode[h]
                    if show is NO_DECODE:
                        show = none_decode[h] = decode_observation(None)
                if show is None or not show.flag:
                    continue
                lvl = show.piece[1]
                if lvl in wanted:
                    if attr == 0:
                        held_top = lvl
                    else:
                        held_bot = lvl
            return (held_top, held_bot)

        return held

    def make_vector_kernel(self, ops, topo):
        """The whole-column classifier for the comparison half of the
        numpy-tier vector sweep (see
        :meth:`TrainComponent.make_vector_kernel
        <repro.trains.train.TrainComponent.make_vector_kernel>` for the
        contract).  Most activations of the comparison are *trivial*:
        the ask is held and no neighbour event fires (sync window), or
        the served neighbour has not displayed the piece yet and the
        ``Want`` stays filed (async).  Those paths reduce to int64
        masks over the J-mask / broadcast-slot / ``Want`` columns plus
        per-pool-id attribute lookups (piece validity, level, weight
        class), with float64 edge-weight compares guarded to the range
        where they are exact.  Anything else — acquire, advance,
        events, alarms, boxed junk, odd ``==`` semantics — replays the
        scalar fused body.
        """
        return _VectorCmpKernel(self, ops, topo)


#: float64 bit pattern as an int64 (PoolIdCache cells are int64)
def _f64bits(x: float) -> int:
    return struct.unpack("<q", struct.pack("<d", x))[0]


class _VectorCmpKernel:
    """Vector classifier state for one :class:`ComparisonComponent`.

    ``classify`` dispatches on the mode (sync window / Want); ``held``
    is the Want mode's vectorized :meth:`~ComparisonComponent.held_levels`
    — it returns per-row hold flags for the train classifiers plus a
    soundness mask (rows whose hold could not be proven go scalar).
    """

    __slots__ = ("comp", "store", "snap", "topo", "ask_cache",
                 "show_cache", "want_cache", "lvl_empty", "_want_ids")

    def __init__(self, comp, ops, topo):
        self.comp = comp
        self.store = ops.store
        self.snap = ops.snap
        self.topo = topo
        store = ops.store

        # shared identity interns: two pieces (or fragment roots) get
        # the same id iff they compare equal under the scalar body's
        # own comparisons.  Roots are plain non-bool ints (valid_piece)
        # so dict equality IS ``==``; whole pieces are tuples, where
        # both dict lookup and tuple ``==`` go through
        # PyObject_RichCompareBool (identity-shortcut) item-wise — the
        # same semantics, including same-object NaN weights.  An
        # unhashable weight falls out as id -1 (never equal: scalar).
        frags: dict = {}
        pieces: dict = {}

        def _piece_id(p):
            try:
                return pieces.setdefault(p, len(pieces))
            except TypeError:
                return -1

        def ask_attrs(val):
            # (valid, level, weight-kind, float64 weight bits,
            #  fragment id, piece id); kind 1 means "compares exactly
            # as float64 against edge weights"
            if not valid_piece(val):
                return (0, 0, 0, 0, -1, -1)
            w = val[2]
            if type(w) is float:
                wk, bits = 1, _f64bits(w)
            elif type(w) is bool:
                wk, bits = 1, _f64bits(float(w))
            elif type(w) is int and -(1 << 50) < w < (1 << 50):
                wk, bits = 1, _f64bits(float(w))
            elif w is None:
                wk, bits = 0, 0
            else:
                wk, bits = 2, 0
            return (1, val[1], wk, bits,
                    frags.setdefault(val[0], len(frags)),
                    _piece_id(tuple(val)))

        def show_attrs(val):
            # (level, fragment id, piece id) a show exposes to
            # _neighbor_piece, or (SHOW_NONE, -1, -1)
            d = decode_observation(val)
            if d is not None and d.flag:
                p = d.piece
                return (p[1], frags.setdefault(p[0], len(frags)),
                        _piece_id(tuple(p)))
            return (SHOW_NONE, -1, -1)

        def want_attrs(val):
            # (who the request names, its level) under plain ==
            # semantics; WL_ODD forces the scalar path
            if isinstance(val, tuple) and len(val) == 2:
                lv = val[1]
                if type(lv) is bool:
                    enc = int(lv)
                elif type(lv) is int:
                    enc = lv if -(1 << 40) < lv < (1 << 40) else WL_NEVER
                elif type(lv) is float:
                    if lv != lv or lv in (float("inf"), float("-inf")) \
                            or not lv.is_integer():
                        enc = WL_NEVER
                    else:
                        iv = int(lv)
                        enc = iv if -(1 << 40) < iv < (1 << 40) \
                            else WL_NEVER
                elif type(lv) in (str, bytes, tuple, frozenset,
                                  type(None)):
                    enc = WL_NEVER      # never == a plain int level
                else:
                    enc = WL_ODD
                return (idx_of(store, val[0]), enc)
            return (IDX_NOT, WL_NEVER)

        self.ask_cache = PoolIdCache(store, 6, ask_attrs)
        self.show_cache = PoolIdCache(store, 3, show_attrs)
        self.want_cache = PoolIdCache(store, 2, want_attrs)
        self.lvl_empty = None
        # per-row memo of the last interned Want filing: a waiting
        # client re-files the same (server, level) for many sweeps, and
        # the pool id of a value never changes, so the memo needs no
        # epoch guard
        self._want_ids = None

    def rebuild(self, np, topo) -> None:
        """Refresh the level-rotation emptiness flags, filling the
        label cache with the exact fused-prologue fill code."""
        comp = self.comp
        cache = comp._label_cache
        n = topo.n
        lvl_empty = np.zeros(n, bool)
        for i in range(n):
            ctx = topo.ctxs[i]
            sentinel = ctx.stable_sentinel()
            ent = cache.get(ctx.node)
            if ent is None or ent[0] != sentinel:
                ent = (sentinel, comp._levels(ctx), {})
                cache[ctx.node] = ent
            lvl_empty[i] = not ent[1]
        self.lvl_empty = lvl_empty

    # -- shared prologue ---------------------------------------------------
    def _prologue(self, np, ia):
        comp, store = self.comp, self.store
        data = store.data
        empty = self.lvl_empty[ia]
        wd_v = view64(data[comp.h_wd])[ia]
        wd_new = np.where((wd_v >= 0) & (wd_v <= _NAT_CAP), wd_v, 0) + 1
        asks = self.ask_cache.sync()
        av = view64(data[comp.h_ask])[ia]
        a_pool = (av >= 0) & (av < self.ask_cache.filled)
        api = np.where(a_pool, av, 0)
        ask_ok = a_pool & (asks[0][api] == 1)
        lvl = asks[1][api]
        # int64 shifts are defined only to 63; real levels are 0..256
        # and a level above 62 cannot set a bit of a <=_NAT_CAP J-mask,
        # but proving that per edge is not worth it: route scalar
        lvl_ok = (lvl >= 0) & (lvl <= 62)
        wk = asks[2][api]
        wflt = asks[3][api].view(np.float64)
        afid = np.where(ask_ok, asks[4][api], -1)
        apid = np.where(ask_ok, asks[5][api], -1)
        return empty, wd_new, ask_ok, lvl, lvl_ok, wk, wflt, afid, apid

    def _show_levels(self, np, cols):
        """Per input column of broadcast-slot pool ids: the shown level
        (or SHOW_NONE) plus the show's fragment and piece intern ids
        (or -1)."""
        shows = self.show_cache.sync()
        filled = self.show_cache.filled
        out = []
        for c in cols:
            pooled = (c >= 0) & (c < filled)
            ci = np.where(pooled, c, 0)
            out.append((np.where(pooled, shows[0][ci], SHOW_NONE),
                        np.where(pooled, shows[1][ci], -1),
                        np.where(pooled, shows[2][ci], -1)))
        return out

    def _kill_overflow_rows(self, triv, row_of, slots):
        store = self.store
        for h in slots:
            ovf = store.overflow[h]
            if ovf:
                for node_i in ovf:
                    r = row_of[node_i]
                    if r >= 0:
                        triv[r] = False

    # -- classifiers -------------------------------------------------------
    def classify(self, np, ia, row_of, aa, sv):
        """``(trivial-mask, apply, publish)`` for the batch rows ``ia``.

        ``apply(rows)`` performs the trivial writes for the row
        *positions* kept (an int64 index array into ``ia``, O(|rows|)).
        ``publish`` is None when no trivial write is ever visible to a
        neighbour's classification, else a full-width mask of the rows
        whose trivial step writes a register neighbours read (the Want
        filings) — the persistent sweep plans invalidate around those
        rows."""
        if self.comp.mode == MODE_SYNC_WINDOW:
            return self._classify_sync(np, ia, row_of, aa)
        return self._classify_want(np, ia, row_of, aa, sv)

    def _classify_sync(self, np, ia, row_of, aa):
        comp, store, snap = self.comp, self.store, self.snap
        data, sdata = store.data, snap.data
        topo = self.topo
        m = len(ia)
        empty, wd_new, ask_ok, lvl, lvl_ok, wk, wflt, afid, apid = \
            self._prologue(np, ia)
        wait_v = view64(data[comp.h_wait])[ia]
        wait = np.where((wait_v >= 0) & (wait_v <= _NAT_CAP), wait_v, 0)
        cond = (wd_new <= aa) & ask_ok & lvl_ok & (wait > 1)
        # per-edge replay of _sync_compare_all's silent paths: a
        # neighbour inside the level must display the *same* piece and
        # not be the cached candidate (else AGREE/C1 could fire); an
        # outgoing edge must pass the weight check exactly.  Anything
        # undecidable — boxed slots, odd weights, an uncached candidate
        # — forces the scalar body.
        e_node, e_pos = csr_take(topo.off, ia)
        ej = topo.flat[e_pos]
        jm = view64(sdata[comp.h_jmask])[ej]
        lvl_e = lvl[e_node]
        sh = np.where((lvl_e >= 0) & (lvl_e <= 62), lvl_e, 0)
        u_has = (jm >= 0) & (jm <= _NAT_CAP) & (((jm >> sh) & 1) == 1)
        tb = view64(sdata[comp.top.h_bbuf])[ej]
        bb = view64(sdata[comp.bottom.h_bbuf])[ej]
        (st, tf, tp), (sb, bf, bp) = self._show_levels(np, (tb, bb))
        ebox = u_has & ((tb == BOX_S) | (bb == BOX_S))
        # the scalar scan takes the top train's show first
        obs_top = u_has & (st == lvl_e)
        obs_bot = u_has & ~obs_top & (sb == lvl_e)
        obs = obs_top | obs_bot
        sfid = np.where(obs_top, tf, bf)
        spid = np.where(obs_top, tp, bp)
        same_frag = obs & (sfid == afid[e_node]) & (sfid >= 0)
        same_piece = (spid >= 0) & (spid == apid[e_node])
        out_ok = (wk[e_node] == 1) & topo.w_exact[e_pos] \
            & ~(topo.wts[e_pos] < wflt[e_node])
        # C1 needs the per-(node, level) candidate: read the scalar
        # body's own cache; a cache miss stays scalar (and fills it)
        u0i = np.full(m, -1, np.int64)
        u0_miss = np.zeros(m, bool)
        if same_frag.any():
            need = seg_any(same_frag, e_node, m)
            cache = comp._label_cache
            MISS = comp._MISS
            ctxs = topo.ctxs
            for r in np.flatnonzero(need):
                r = int(r)
                ent = cache.get(ctxs[int(ia[r])].node)
                u0 = MISS if ent is None \
                    else ent[2].get(int(lvl[r]), MISS)
                if u0 is MISS:
                    u0_miss[r] = True
                elif u0 is not None:
                    u0x = idx_of(store, u0)
                    if u0x == IDX_ODD:
                        u0_miss[r] = True   # odd ==: scalar decides
                    else:
                        u0i[r] = u0x
        bad = ebox \
            | (~u_has & ~out_ok) \
            | (obs & ~same_frag & ~out_ok) \
            | (same_frag & (~same_piece | u0_miss[e_node]
                            | (ej == u0i[e_node])))
        triv = empty | (cond & ~seg_any(bad, e_node, m))
        self._kill_overflow_rows(triv, row_of, (comp.h_wd, comp.h_wait))

        h_wd, h_wait = comp.h_wd, comp.h_wait
        dc = store.dirty_cols

        def apply(rows):
            sel = rows[~empty[rows]]
            if len(sel):
                ri = ia[sel]
                view64(data[h_wd])[ri] = wd_new[sel]
                dc[h_wd] = 1
                view64(data[h_wait])[ri] = wait[sel] - 1
                dc[h_wait] = 1

        # wd/wait are own-only registers no neighbour classifies on
        return triv, apply, None

    def _classify_want(self, np, ia, row_of, aa, sv):
        comp, store, snap = self.comp, self.store, self.snap
        data, sdata = store.data, snap.data
        topo = self.topo
        m = len(ia)
        empty, wd_new, ask_ok, lvl, lvl_ok, wk, wflt, _afid, _apid = \
            self._prologue(np, ia)
        if int(topo.off[-1]) == 0:
            # no edges anywhere: every non-empty row advances (scalar)
            return empty.copy(), (lambda rows: None), None
        nr = view64(data[comp.h_nbr])[ia]
        idx = np.where((nr > 0) & (nr <= _NAT_CAP), nr, 0)
        in_rng = idx < topo.degs[ia]
        pos = np.where(in_rng, topo.off[ia] + idx, 0)
        j = topo.flat[pos]
        jm = view64(sdata[comp.h_jmask])[j]
        sh = np.where(lvl_ok, lvl, 0)
        u_has = (jm >= 0) & (jm <= _NAT_CAP) & (((jm >> sh) & 1) == 1)
        tb = view64(sdata[comp.top.h_bbuf])[j]
        bb = view64(sdata[comp.bottom.h_bbuf])[j]
        (st, _, _), (sb, _, _) = self._show_levels(np, (tb, bb))
        ebox = u_has & ((tb == BOX_S) | (bb == BOX_S))
        obs_found = u_has & ((st == lvl) | (sb == lvl))
        out_bad = (wk != 1) | ~topo.w_exact[pos] | (topo.wts[pos] < wflt)
        svc_v = view64(data[comp.h_svc])[ia]
        svc_new = np.where((svc_v >= 0) & (svc_v <= _NAT_CAP),
                           svc_v, 0) + 1
        cond = ~empty & (wd_new <= aa) & ask_ok & lvl_ok & in_rng & ~ebox
        # branch B: the served neighbour is outside the level and no
        # outgoing check can alarm -> bump wd, advance nbr, clear svc
        triv_b = cond & ~u_has & ~out_bad
        # branch F: the neighbour claims the level but shows no piece
        # yet -> file the Want, bump the service watchdog (under budget)
        triv_f = cond & u_has & ~obs_found & (svc_new <= sv)
        self._kill_overflow_rows(
            triv_b, row_of, (comp.h_wd, comp.h_nbr, comp.h_svc))
        triv = empty | triv_b | triv_f

        h_wd, h_nbr, h_svc, h_want = (comp.h_wd, comp.h_nbr,
                                      comp.h_svc, comp.h_want)
        dc = store.dirty_cols
        nodes = store.nodes
        overflow = store.overflow
        intern = store.intern
        want_col = data[h_want]
        w_wd = store.make_nat_writer(h_wd)
        w_svc = store.make_nat_writer(h_svc)

        # intern the filings up front: publication is a *change*, and
        # most filings re-assert the want the row already holds while
        # it waits for service — an unchanged register cannot stale
        # any neighbour's hold verdict
        f_rows = np.flatnonzero(triv_f)
        want_ids = None
        cpub = np.zeros(m, bool)
        if len(f_rows):
            wc = self._want_ids
            if wc is None or len(wc[0]) != topo.n:
                wc = self._want_ids = (
                    np.full(topo.n, -1, np.int64),
                    np.full(topo.n, WL_NEVER, np.int64),
                    np.zeros(topo.n, np.int64))
            wcj, wcl, wcv = wc
            ri = ia[f_rows]
            jj = j[f_rows]
            ll = lvl[f_rows]
            ids = np.where((wcj[ri] == jj) & (wcl[ri] == ll),
                           wcv[ri], -1)
            for q in np.flatnonzero(ids < 0).tolist():
                r = int(f_rows[q])
                ids[q] = intern((nodes[int(j[r])], int(lvl[r])))
            wcj[ri] = jj
            wcl[ri] = ll
            wcv[ri] = ids
            want_ids = np.zeros(m, np.int64)
            want_ids[f_rows] = ids
            cpub[f_rows] = ids != view64(want_col)[ia[f_rows]]

        def apply(rows):
            b = rows[triv_b[rows]]
            if len(b):
                ri = ia[b]
                view64(data[h_wd])[ri] = wd_new[b]
                dc[h_wd] = 1
                view64(data[h_nbr])[ri] = idx[b] + 1
                dc[h_nbr] = 1
                view64(data[h_svc])[ri] = 0
                dc[h_svc] = 1
            f = rows[triv_f[rows]]
            if len(f):
                # the Want filing lands through the store's canonical
                # writers: a short python loop over the (few) waiting
                # clients
                ovf = overflow[h_want]
                for r in f.tolist():
                    i = int(ia[r])
                    w_wd(i, int(wd_new[r]))
                    if ovf:
                        ovf.pop(i, None)
                    want_col[i] = int(want_ids[r])
                    w_svc(i, int(svc_new[r]))
                dc[h_want] = 1

        # branch F writes ``want``, which neighbours' held() reads
        return triv, apply, cpub

    # -- Want-mode hold flags ---------------------------------------------
    def held(self, np, ia, row_of):
        """(held_ok, hold_top, hold_bot): per-row "is a show held" for
        the train classifiers, with held_ok False where boxed slots or
        odd equality semantics leave the answer to the scalar body."""
        comp, store, snap = self.comp, self.store, self.snap
        topo = self.topo
        m = len(ia)
        if int(topo.off[-1]) == 0:
            z = np.zeros(m, bool)
            return np.ones(m, bool), z, z
        e_node, e_pos = csr_take(topo.off, ia)
        wr = view64(snap.data[comp.h_want])[topo.flat[e_pos]]
        wants = self.want_cache.sync()
        w_pool = (wr >= 0) & (wr < self.want_cache.filled)
        wpi = np.where(w_pool, wr, 0)
        wf = wants[0][wpi]
        wl = wants[1][wpi]
        mine = w_pool & (wf == ia[e_node])
        odd = (wr == BOX_S) | (w_pool & ((wf == IDX_ODD)
                                         | (mine & (wl == WL_ODD))))
        tb = view64(store.data[comp.top.h_bbuf])[ia]       # own, live
        bb = view64(store.data[comp.bottom.h_bbuf])[ia]
        (st, _, _), (sb, _, _) = self._show_levels(np, (tb, bb))
        obox = (tb == BOX_S) | (bb == BOX_S)
        ht = seg_any(mine & (wl == st[e_node]), e_node, m)
        hb = seg_any(mine & (wl == sb[e_node]), e_node, m)
        held_ok = ~(seg_any(odd, e_node, m) | obox)
        return held_ok, ht, hb
