"""Timing budgets of the self-stabilizing verifier.

All watchdog thresholds are deterministic functions of the (verified)
claimed ``n`` — every node computes the same budgets, so the verifier
needs no global coordination:

* a *train cycle* budget: the time one full rotation of a part's pieces
  may take (Theorem 7.1: O(log n) synchronous, O(log^2 n) asynchronous);
* a *root reset* budget: a part root that fails to complete a cycle
  within it resets the train's dynamic state (the "known art"
  self-stabilization of the train, Observation 8.1) — resets repair
  corrupted *working* state silently and never fire in fault-free runs;
* a *node alarm* budget: a node that does not obtain the pieces it needs
  within it raises an alarm (Claim 8.2's "prescribed time bounds");
* an *ask window* (synchronous mode): how long a node exposes a level in
  Ask so that all neighbours' trains are guaranteed to have shown their
  matching piece (Section 7.2.1);
* a *service* budget (asynchronous Want mode): the wait for one server.

The constants are generous multiples of the leading terms; completeness
tests (no alarms on correct instances) and detection-time benchmarks
calibrate them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..labels.wellforming import log_threshold


@dataclass(frozen=True)
class Budgets:
    """Watchdog thresholds (in rounds / activations)."""

    cycle: int        # one train rotation
    root_reset: int   # part root resets the train after this long
    node_alarm: int   # a starving node raises an alarm after this long
    ask_window: int   # synchronous Ask hold per level
    service: int      # asynchronous wait for one server
    ask_alarm: int    # full Ask-cycle watchdog
    settle: int       # harness: rounds for a clean start to reach steady state


def compute_budgets(n: int, synchronous: bool, degree: int = 1) -> Budgets:
    """Budgets for a node of the given degree in an n-node network."""
    n = max(2, n)
    ell = log_threshold(n)          # hierarchy height bound
    pieces = 2 * ell + 4            # pieces per part (Lemmas 6.4/6.5)
    height = 4 * ell + 8            # part height bound (EDIAM cap)
    if synchronous:
        cycle = 3 * pieces + 2 * height + 16
    else:
        # asynchronous rotations pay up to the part height per piece
        cycle = 2 * pieces * (height + 4) + 32
    root_reset = 2 * cycle
    node_alarm = 8 * cycle
    ask_window = cycle + 8
    service = 2 * cycle + 16
    levels = ell + 2
    if synchronous:
        ask_alarm = 4 * levels * (ask_window + cycle)
    else:
        ask_alarm = 4 * levels * max(1, degree) * service
    settle = 2 * levels * (ask_window + cycle) + node_alarm
    return Budgets(cycle=cycle, root_reset=root_reset,
                   node_alarm=node_alarm, ask_window=ask_window,
                   service=service, ask_alarm=ask_alarm, settle=settle)


def _cycle_time(pieces: int, height: int, synchronous: bool) -> int:
    """One rotation of a part with ``pieces`` pieces and ``height`` height:
    O(pieces + height) synchronous, O(pieces * height) asynchronous
    (Theorem 7.1)."""
    if synchronous:
        return 3 * (pieces + 2) + 2 * (height + 2) + 12
    return 2 * (pieces + 2) * (height + 3) + 24


def node_budgets(ctx, synchronous: bool) -> Budgets:
    """Label-driven budgets: tighter than the worst case, still capped.

    The verified labels carry each part's actual piece count and height
    bound; every node derives its watchdog thresholds from its own part's
    parameters (resets, starvation) and its neighbours' (the ask window
    must cover the *neighbours'* rotation times).  All claims are capped
    at the O(log n) theory bounds, so corrupted labels cannot stretch the
    budgets beyond Theorem 8.5's asymptotics — the static checks reject
    over-cap claims independently.
    """
    from ..labels.registers import (REG_BOT_BOUND, REG_BOT_COUNT, REG_JMASK,
                                    REG_N, REG_TOP_BOUND, REG_TOP_COUNT)

    def nat(x, cap):
        if isinstance(x, int) and not isinstance(x, bool) and 0 <= x <= cap:
            return x
        return cap

    n = nat(ctx.get(REG_N), 1 << 26)
    ell = log_threshold(max(2, n))
    count_cap = 2 * ell + 2
    bound_cap = 4 * ell + 4

    def part_cycle(source_read):
        pieces = max(source_read(REG_TOP_COUNT, count_cap),
                     source_read(REG_BOT_COUNT, count_cap))
        height = max(source_read(REG_TOP_BOUND, bound_cap),
                     source_read(REG_BOT_BOUND, bound_cap))
        return _cycle_time(pieces, height, synchronous)

    own_cycle = part_cycle(lambda reg, cap: nat(ctx.get(reg), cap))
    nbr_cycle = own_cycle
    for u in ctx.neighbors:
        nbr_cycle = max(nbr_cycle, part_cycle(
            lambda reg, cap, u=u: nat(ctx.read(u, reg), cap)))

    jmask = ctx.get(REG_JMASK)
    levels = bin(jmask).count("1") if isinstance(jmask, int) and jmask >= 0 \
        else ell + 1
    levels = min(max(1, levels), ell + 2)

    ask_window = nbr_cycle + 8
    service = 2 * nbr_cycle + 16
    root_reset = 2 * own_cycle
    node_alarm = 8 * max(own_cycle, ask_window)
    if synchronous:
        ask_alarm = 4 * levels * (ask_window + own_cycle)
    else:
        ask_alarm = 4 * levels * max(1, ctx.degree) * service
    settle = 2 * levels * (ask_window + own_cycle) + node_alarm
    return Budgets(cycle=own_cycle, root_reset=root_reset,
                   node_alarm=node_alarm, ask_window=ask_window,
                   service=service, ask_alarm=ask_alarm, settle=settle)
