"""Trains and the comparison mechanism (Section 7): piece rotation inside
parts, membership flags, Ask/Show sampling and Want handshakes, and the
watchdog budgets that make the verifier self-stabilizing."""

from .budgets import Budgets, compute_budgets
from .train import (SEQ_MOD, TrainComponent, TrainObservation, piece_key,
                    valid_piece)
from .comparison import (MODE_SYNC_WINDOW, MODE_WANT, MODE_WANT_SIMPLE,
                         ComparisonComponent, REG_ASK, REG_WANT)

__all__ = [
    "Budgets", "compute_budgets",
    "SEQ_MOD", "TrainComponent", "TrainObservation", "piece_key",
    "valid_piece",
    "MODE_SYNC_WINDOW", "MODE_WANT", "MODE_WANT_SIMPLE",
    "ComparisonComponent", "REG_ASK", "REG_WANT",
]
