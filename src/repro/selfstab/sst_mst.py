"""The self-stabilizing MST algorithm (Theorems 10.2/10.3).

Plugging SYNC_MST (O(n) time, O(log n) bits) and the train-based
verification scheme (O(log n) bits, O(log^2 n) synchronous detection)
into the enhanced Resynchronizer yields the paper's headline: an
asynchronous-capable self-stabilizing MST construction with **O(log n)
bits per node and O(n) stabilization time**, detecting late faults in
O(log^2 n) (sync) / O(Delta log^3 n) (async), each within the O(f log n)
locality of the faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..graphs.weighted import Edge, NodeId, WeightedGraph, edge_key
from ..sim.network import Network
from ..sim.schedulers import Daemon
from ..trains.budgets import compute_budgets
from ..verification.marker import run_marker
from ..verification.verifier import MstVerifierProtocol
from .transformer import Checker, Resynchronizer, StabilizationTrace


def _construct(graph: WeightedGraph) -> Tuple[Dict[NodeId, Dict[str, Any]], int]:
    marker = run_marker(graph)
    return marker.labels, marker.construction_rounds


def mst_checker(synchronous: bool = True,
                comparison_mode: Optional[str] = None,
                static_every: int = 1) -> Checker:
    """The paper's checker: SYNC_MST + marker + train verifier."""
    return Checker(
        name="kkm-train-verifier",
        protocol_factory=lambda: MstVerifierProtocol(
            synchronous=synchronous, comparison_mode=comparison_mode,
            static_every=static_every),
        construct=_construct,
    )


@dataclass
class SelfStabMstResult:
    """Outcome of one stabilization run."""

    trace: StabilizationTrace
    edges: set
    max_memory_bits: int
    correct: bool


def current_output_edges(network: Network) -> set:
    """The tree currently represented by the components (pid registers)."""
    edges = set()
    for v in network.graph.nodes():
        pid = network.registers[v].get("pid")
        if isinstance(pid, int) and network.graph.has_edge(v, pid):
            edges.add(edge_key(v, pid))
    return edges


def run_self_stabilizing_mst(graph: WeightedGraph,
                             synchronous: bool = True,
                             daemon: Optional[Daemon] = None,
                             initial_state: Optional[Dict[NodeId, Dict[str, Any]]] = None,
                             verify_rounds: Optional[int] = None,
                             static_every: int = 1) -> SelfStabMstResult:
    """Stabilize from an arbitrary initial state and report the result.

    ``initial_state = None`` starts from empty registers (a cold start —
    the static checks detect immediately and trigger construction);
    passing adversarial registers exercises recovery from corruption.
    """
    from ..graphs.mst_reference import kruskal_mst

    network = Network(graph)
    if initial_state:
        network.install(initial_state)
    checker = mst_checker(synchronous=synchronous, static_every=static_every)
    resync = Resynchronizer(network, checker, synchronous=synchronous,
                            daemon=daemon)
    if verify_rounds is None:
        budgets = compute_budgets(graph.n, synchronous,
                                  degree=graph.max_degree())
        verify_rounds = 2 * budgets.ask_alarm
    trace = resync.run_until_stable(verify_rounds)
    edges = current_output_edges(network)
    return SelfStabMstResult(
        trace=trace,
        edges=edges,
        max_memory_bits=network.max_memory_bits(),
        correct=(edges == kruskal_mst(graph)),
    )
