"""Self-stabilization (Section 10): the enhanced Awerbuch-Varghese
transformer, the pluggable checker interface, the reset wave, and the
self-stabilizing MST construction algorithm."""

from .transformer import (Checker, ResetWaveProtocol, Resynchronizer,
                          StabilizationTrace, REG_RESET_EPOCH)
from .sst_mst import (SelfStabMstResult, current_output_edges, mst_checker,
                      run_self_stabilizing_mst)

__all__ = [
    "Checker", "ResetWaveProtocol", "Resynchronizer", "StabilizationTrace",
    "REG_RESET_EPOCH",
    "SelfStabMstResult", "current_output_edges", "mst_checker",
    "run_self_stabilizing_mst",
]
