"""The enhanced Awerbuch–Varghese transformer (Section 10).

The Resynchronizer turns an input/output construction algorithm Pi plus a
self-stabilizing verification scheme Pi' into a self-stabilizing
algorithm (Theorem 10.3):

* the verifier continuously checks the current output;
* when some node raises an alarm (a *detecting node*), a **reset wave**
  floods the network, clearing all output and verification registers;
* after the reset, the construction re-runs and the marker re-labels;
* the verifier resumes, silent until the next fault.

The resulting complexities (Theorem 10.3): memory O(S_Pi + S_Pi' + log n);
time O(T_Pi + T_Pi' + t_Pi' + n); and the detection time / detection
distance of the verification scheme are inherited.

Simulation fidelity: the verification phase and the reset wave run
protocol-level on the simulator (per-node steps, real rounds).  The
construction phase is charged its engine-accounted rounds (SYNC_MST's
exact phase windows plus the marker's Multi_Wave times) and its labels
are installed wholesale — the same substitution the marker module makes,
documented in DESIGN.md.  The underlying synchronizer/reset machinery of
[13]/[10] is represented by the reset-wave protocol below.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..graphs.weighted import NodeId, WeightedGraph
from ..sim.network import Network, NodeContext, Protocol, first_alarm
from ..sim.schedulers import (AsynchronousScheduler, Daemon,
                              SynchronousScheduler)
from ..trains.comparison import rotation_settled

REG_RESET_EPOCH = "rs_epoch"    # reset wave epoch (mod 64)
RESET_MOD = 64


@dataclass
class Checker:
    """The pluggable checker slot of the Resynchronizer.

    * ``protocol_factory`` builds the per-node verification protocol;
    * ``construct`` produces (labels, charged_rounds) for the current
      graph — the construction algorithm Pi composed with the marker of
      the verification scheme Pi'.
    """

    name: str
    protocol_factory: Callable[[], Protocol]
    construct: Callable[[WeightedGraph], Tuple[Dict[NodeId, Dict[str, Any]], int]]
    #: labels' registers that constitute the *output* (the MST component);
    #: used to check output stability across recomputations.
    output_registers: Tuple[str, ...] = ("pid", "pport")


class ResetWaveProtocol(Protocol):
    """Flooding reset (the [13] reset service, simplified to one wave).

    A node whose epoch differs from a neighbour's larger epoch adopts it
    and clears every non-ghost register except the epoch — within
    diameter rounds the whole network is clean.
    """

    def __init__(self) -> None:
        self.triggered: List[NodeId] = []

    def init_node(self, ctx: NodeContext) -> None:
        if ctx.get(REG_RESET_EPOCH) is None:
            ctx.set(REG_RESET_EPOCH, 0)

    def step(self, ctx: NodeContext) -> None:
        epoch = ctx.get(REG_RESET_EPOCH)
        if not isinstance(epoch, int):
            epoch = 0
        best = epoch
        for u in ctx.neighbors:
            other = ctx.read(u, REG_RESET_EPOCH)
            if isinstance(other, int) and (other - epoch) % RESET_MOD != 0 \
                    and 0 < (other - epoch) % RESET_MOD < RESET_MOD // 2:
                best = max(best, epoch + (other - epoch) % RESET_MOD)
        if best != epoch:
            regs = ctx.network.registers[ctx.node]
            for name in list(regs):
                if name != REG_RESET_EPOCH and not name.startswith("_"):
                    ctx.unset(name)
            ctx.set(REG_RESET_EPOCH, best % RESET_MOD)


@dataclass
class StabilizationTrace:
    """What happened during one ``run_until_stable`` execution."""

    total_rounds: int
    reset_waves: int
    construction_rounds: int
    verification_rounds: int
    detections: List[Tuple[int, NodeId, str]] = field(default_factory=list)


class Resynchronizer:
    """Drives the detect -> reset -> reconstruct -> verify loop."""

    def __init__(self, network: Network, checker: Checker,
                 synchronous: bool = True,
                 daemon: Optional[Daemon] = None) -> None:
        self.network = network
        self.checker = checker
        self.synchronous = synchronous
        self.daemon = daemon
        self.trace = StabilizationTrace(0, 0, 0, 0)

    # ------------------------------------------------------------------
    def _run_protocol(self, protocol: Protocol, max_rounds: int,
                      stop_when=None) -> int:
        if self.synchronous:
            sched = SynchronousScheduler(self.network, protocol)
        else:
            sched = AsynchronousScheduler(self.network, protocol, self.daemon)
        return sched.run(max_rounds, stop_when=stop_when)

    def reset(self) -> int:
        """Flood a reset wave from the detecting nodes; returns rounds."""
        # bump the epoch at every alarming node, then flood
        alarming = list(self.network.alarms()) or [self.network.graph.nodes()[0]]
        for v in alarming:
            regs = self.network.registers[v]
            epoch = regs.get(REG_RESET_EPOCH)
            epoch = epoch if isinstance(epoch, int) else 0
            # clear the detecting node itself
            for name in list(regs):
                if name != REG_RESET_EPOCH and not name.startswith("_"):
                    del regs[name]
            regs[REG_RESET_EPOCH] = (epoch + 1) % RESET_MOD
        wave = ResetWaveProtocol()
        diameter_bound = self.network.graph.n + 1
        rounds = self._run_protocol(wave, diameter_bound)
        self.trace.reset_waves += 1
        return rounds

    def construct(self) -> int:
        """Re-run the construction + marker; install labels; charge time."""
        labels, rounds = self.checker.construct(self.network.graph)
        for v, regs in labels.items():
            epoch = self.network.registers[v].get(REG_RESET_EPOCH, 0)
            self.network.registers[v] = dict(regs)
            self.network.registers[v][REG_RESET_EPOCH] = epoch
        self.trace.construction_rounds += rounds
        return rounds

    def verify(self, max_rounds: int) -> Tuple[int, bool]:
        """Run the verifier; returns (rounds, detected).

        The silent window ends early once every node has completed two
        full Ask rotations without an alarm — by then every comparison
        event E(v, u, j) has occurred at least once.
        """
        protocol = self.checker.protocol_factory()
        base = {v: regs.get("_rot") or 0
                for v, regs in self.network.registers.items()}

        def silent_and_steady(net: Network) -> bool:
            return rotation_settled(net, min_rotations=2, base=base)

        rounds = self._run_protocol(protocol, max_rounds,
                                    stop_when=silent_and_steady)
        alarms = self.network.alarms()
        for v, reason in alarms.items():
            self.trace.detections.append((self.trace.total_rounds + rounds,
                                          v, reason))
        self.trace.verification_rounds += rounds
        return rounds, bool(alarms)

    # ------------------------------------------------------------------
    def run_until_stable(self, verify_rounds: int,
                         max_iterations: int = 8) -> StabilizationTrace:
        """From the network's current (possibly adversarial) state:
        verify; on detection reset + reconstruct; repeat until a full
        verification window passes silently."""
        for _ in range(max_iterations):
            rounds, detected = self.verify(verify_rounds)
            self.trace.total_rounds += rounds
            if not detected:
                return self.trace
            self.trace.total_rounds += self.reset()
            self.trace.total_rounds += self.construct()
        raise AssertionError("resynchronizer failed to stabilize "
                             f"within {max_iterations} iterations")
