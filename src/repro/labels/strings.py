"""The hierarchy strings of Section 5: Roots, EndP, Parents, Or-EndP.

For a hierarchy of height ``ell`` every node carries four strings with one
entry per level ``0..ell``:

* ``Roots``   — '1' root of the level-j fragment, '0' member, '*' no
  level-j fragment contains the node;
* ``EndP``    — which node is the endpoint of the fragment's candidate
  edge and in which direction it leaves ('u'p to the parent, 'd'own to a
  child, 'n'one, '*' no fragment);
* ``Parents`` — bit at ``x``: the edge (parent(x), x) is the candidate of
  the level-j fragment containing parent(x) (the paper's trick to avoid
  storing O(log n) child pointers at high-degree nodes);
* ``Or-EndP`` — the per-subtree-within-fragment count of candidate
  endpoints, capped at 2 (the paper presents the OR; the capped count is
  what lets condition EPS1 check *exactly one* endpoint with O(log n)
  bits, in the style of Example NumK).

The module computes the strings from a hierarchy (the marker side) and
formats them in the layout of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..graphs.spanning import RootedTree
from ..graphs.weighted import NodeId
from ..hierarchy.fragments import Fragment, Hierarchy

#: compact EndP symbols used in the register encoding.
ENDP_UP = "u"
ENDP_DOWN = "d"
ENDP_NONE = "n"
ENDP_STAR = "*"

#: mapping to the paper's presentation in Table 2.
ENDP_DISPLAY = {ENDP_UP: "up", ENDP_DOWN: "down",
                ENDP_NONE: "none", ENDP_STAR: "*"}


@dataclass
class NodeStrings:
    """The four per-node strings (entries 0..ell, left to right)."""

    roots: str
    endp: str
    parents: str
    orendp: Tuple[int, ...]

    def endp_display(self) -> Tuple[str, ...]:
        """EndP in the paper's 'up/down/none/*' vocabulary."""
        return tuple(ENDP_DISPLAY[c] for c in self.endp)

    def orendp_display(self) -> str:
        """Or-EndP as the paper's OR bits (count capped to 1)."""
        return "".join("1" if c >= 1 else "0" for c in self.orendp)


def compute_node_strings(hierarchy: Hierarchy) -> Dict[NodeId, NodeStrings]:
    """The marker's string assignment for a (correct-instance) hierarchy."""
    tree = hierarchy.tree
    ell = hierarchy.height
    width = ell + 1
    roots = {v: ["*"] * width for v in tree.nodes()}
    endp = {v: [ENDP_STAR] * width for v in tree.nodes()}
    parents = {v: ["0"] * width for v in tree.nodes()}
    orendp = {v: [0] * width for v in tree.nodes()}

    for frag in hierarchy.fragments:
        j = frag.level
        for v in frag.nodes:
            roots[v][j] = "1" if v == frag.root else "0"
            endp[v][j] = ENDP_NONE
        if frag.candidate_edge is None:
            continue
        u, x = frag.candidate_edge
        if tree.parent[u] == x:
            endp[u][j] = ENDP_UP
        else:
            # the candidate leaves downward: x must be u's tree child.
            assert tree.parent[x] == u, "candidate edge is not a tree edge"
            endp[u][j] = ENDP_DOWN
            parents[x][j] = "1"

    # Or-EndP: capped count of candidate endpoints in the subtree of v
    # restricted to v's level-j fragment, aggregated bottom-up.
    for v in tree.dfs_postorder():
        for j in range(width):
            if roots[v][j] == "*":
                continue
            count = 1 if endp[v][j] in (ENDP_UP, ENDP_DOWN) else 0
            for c in tree.children[v]:
                if j < len(roots[c]) and roots[c][j] == "0":
                    count += orendp[c][j]
            orendp[v][j] = min(2, count)

    return {
        v: NodeStrings(
            roots="".join(roots[v]),
            endp="".join(endp[v]),
            parents="".join(parents[v]),
            orendp=tuple(orendp[v]),
        )
        for v in tree.nodes()
    }


def levels_mask(roots_string: str) -> int:
    """Bitmask of the levels at which the node has a fragment (J(v))."""
    mask = 0
    for j, c in enumerate(roots_string):
        if c != "*":
            mask |= 1 << j
    return mask


def format_table2(strings: Dict[NodeId, NodeStrings],
                  names: Optional[Dict[NodeId, str]] = None) -> str:
    """Render the four string tables in the layout of Table 2."""
    nodes = sorted(strings, key=lambda v: (names or {}).get(v, str(v)))
    width = len(strings[nodes[0]].roots)
    header = " ".join(str(j) for j in range(width))

    def name(v: NodeId) -> str:
        return names[v] if names else str(v)

    lines: List[str] = []
    lines.append(f"Roots      {header}")
    for v in nodes:
        lines.append(f"  {name(v):>3} " + " ".join(strings[v].roots))
    lines.append(f"EndP       {header}")
    for v in nodes:
        cells = " ".join(f"{c:>4}" for c in strings[v].endp_display())
        lines.append(f"  {name(v):>3} {cells}")
    lines.append(f"Parents    {header}")
    for v in nodes:
        lines.append(f"  {name(v):>3} " + " ".join(strings[v].parents))
    lines.append(f"Or-EndP    {header}")
    for v in nodes:
        lines.append(f"  {name(v):>3} " + " ".join(strings[v].orendp_display()))
    return "\n".join(lines)
