"""Proof labeling: 1-PLS examples (SP / NumK / EDIAM), the hierarchy
strings of Section 5, and the 1-round well-forming verifier."""

from .strings import (ENDP_DISPLAY, ENDP_DOWN, ENDP_NONE, ENDP_STAR, ENDP_UP,
                      NodeStrings, compute_node_strings, format_table2,
                      levels_mask)
from .views import StaticView, all_views, view_neighbor_at_port
from .wellforming import (ALL_STATIC_CHECKS, check_ell, check_endp_parents,
                          check_jmask_delim, check_partitions,
                          check_roots_string, check_size,
                          check_spanning_tree, level_is_bottom,
                          log_threshold, sorted_levels, static_check,
                          tree_children)
from .examples import (EDIAM_SCHEME, NUMK_SCHEME, SP_SCHEME, MarkerResult,
                       OneProofLabelingScheme)
from . import registers

__all__ = [
    "ENDP_DISPLAY", "ENDP_DOWN", "ENDP_NONE", "ENDP_STAR", "ENDP_UP",
    "NodeStrings", "compute_node_strings", "format_table2", "levels_mask",
    "StaticView", "all_views", "view_neighbor_at_port",
    "ALL_STATIC_CHECKS", "check_ell", "check_endp_parents",
    "check_jmask_delim", "check_partitions", "check_roots_string",
    "check_size", "check_spanning_tree", "level_is_bottom", "log_threshold",
    "sorted_levels", "static_check", "tree_children",
    "EDIAM_SCHEME", "NUMK_SCHEME", "SP_SCHEME", "MarkerResult",
    "OneProofLabelingScheme",
    "registers",
]
