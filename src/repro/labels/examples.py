"""Self-contained 1-proof labeling schemes (Section 2.6 warm-ups).

Each scheme packages a centralized-result *marker* (what the distributed
marker would write, with its construction time charged per the paper) and
a 1-round local *verifier*.  They exist as stand-alone, reusable schemes
— the full MST scheme embeds equivalent checks via
:mod:`repro.labels.wellforming` — and as the simplest instances of the
proof-labeling-scheme interface used across the project.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..graphs.spanning import RootedTree
from ..graphs.weighted import NodeId, WeightedGraph
from .views import StaticView


@dataclass
class OneProofLabelingScheme:
    """A 1-PLS: a marker producing labels and a 1-round local verifier.

    ``marker(tree)`` returns ``{node: {register: value}}`` and the charged
    construction time in ideal rounds; ``verify(view)`` returns failure
    reasons for one node.
    """

    name: str
    marker: Callable[[RootedTree], "MarkerResult"]
    verify: Callable[[Any], List[str]]

    def verify_all(self, graph: WeightedGraph,
                   labels: Mapping[NodeId, Mapping[str, Any]]) -> Dict[NodeId, List[str]]:
        """Run the verifier at every node; {node: reasons} for failures."""
        out: Dict[NodeId, List[str]] = {}
        for v in graph.nodes():
            reasons = self.verify(StaticView(graph, v, labels))
            if reasons:
                out[v] = reasons
        return out


@dataclass
class MarkerResult:
    labels: Dict[NodeId, Dict[str, Any]]
    construction_rounds: int


# ---------------------------------------------------------------------------
# Example SP: H(G) is a spanning tree
# ---------------------------------------------------------------------------

def sp_marker(tree: RootedTree) -> MarkerResult:
    """Labels: root identity and distance to the root (O(n) time)."""
    labels = {
        v: {
            "sp_root": tree.root,
            "sp_dist": tree.depth[v],
            "sp_parent": tree.parent[v],
        }
        for v in tree.nodes()
    }
    return MarkerResult(labels, construction_rounds=2 * tree.height() + 1)


def sp_verify(view) -> List[str]:
    bad: List[str] = []
    root = view.get("sp_root")
    dist = view.get("sp_dist")
    parent = view.get("sp_parent")
    if not isinstance(dist, int) or dist < 0:
        return ["sp: malformed distance"]
    for u in view.neighbors:
        if view.read(u, "sp_root") != root:
            bad.append("sp: root disagreement")
            break
    if dist == 0:
        if root != view.node:
            bad.append("sp: zero distance at a non-root")
        if parent is not None:
            bad.append("sp: root has a parent")
    else:
        if parent not in view.neighbors:
            bad.append("sp: parent is not a neighbour")
        elif view.read(parent, "sp_dist") != dist - 1:
            bad.append("sp: parent distance mismatch")
    return bad


SP_SCHEME = OneProofLabelingScheme("spanning-tree", sp_marker, sp_verify)


# ---------------------------------------------------------------------------
# Example NumK: every node knows n
# ---------------------------------------------------------------------------

def numk_marker(tree: RootedTree) -> MarkerResult:
    sizes = tree.subtree_sizes()
    n = tree.graph.n
    labels = {
        v: {
            "nk_n": n,
            "nk_sub": sizes[v],
            "nk_parent": tree.parent[v],
        }
        for v in tree.nodes()
    }
    return MarkerResult(labels, construction_rounds=2 * tree.height() + 1)


def numk_verify(view) -> List[str]:
    bad: List[str] = []
    n = view.get("nk_n")
    sub = view.get("nk_sub")
    if not isinstance(n, int) or n < 1 or not isinstance(sub, int):
        return ["numk: malformed labels"]
    for u in view.neighbors:
        if view.read(u, "nk_n") != n:
            bad.append("numk: n disagreement")
            break
    total = 1
    for u in view.neighbors:
        if view.read(u, "nk_parent") == view.node:
            child_sub = view.read(u, "nk_sub")
            total += child_sub if isinstance(child_sub, int) else 0
    if sub != total:
        bad.append("numk: subtree aggregation mismatch")
    if view.get("nk_parent") is None and sub != n:
        bad.append("numk: root count differs from the claimed n")
    return bad


NUMK_SCHEME = OneProofLabelingScheme("number-of-nodes", numk_marker, numk_verify)


# ---------------------------------------------------------------------------
# Example EDIAM: an agreed upper bound on the tree height
# ---------------------------------------------------------------------------

def ediam_marker(tree: RootedTree, slack: int = 0) -> MarkerResult:
    """Labels: the common bound x >= height, plus distances (O(n) time)."""
    bound = tree.height() + slack
    labels = {
        v: {
            "ed_bound": bound,
            "ed_dist": tree.depth[v],
            "ed_parent": tree.parent[v],
        }
        for v in tree.nodes()
    }
    return MarkerResult(labels, construction_rounds=2 * tree.height() + 1)


def ediam_verify(view) -> List[str]:
    bad: List[str] = []
    bound = view.get("ed_bound")
    dist = view.get("ed_dist")
    parent = view.get("ed_parent")
    if not isinstance(bound, int) or not isinstance(dist, int) or dist < 0:
        return ["ediam: malformed labels"]
    for u in view.neighbors:
        if view.read(u, "ed_bound") != bound:
            bad.append("ediam: bound disagreement")
            break
    if dist == 0:
        if parent is not None:
            bad.append("ediam: root has a parent")
    else:
        if parent not in view.neighbors:
            bad.append("ediam: parent is not a neighbour")
        elif view.read(parent, "ed_dist") != dist - 1:
            bad.append("ediam: parent distance mismatch")
    if dist > bound:
        bad.append("ediam: distance exceeds the agreed bound")
    return bad


EDIAM_SCHEME = OneProofLabelingScheme("height-bound", ediam_marker, ediam_verify)
