"""The 1-round local checks of the verifier (Sections 2.6, 5, 6.1.3).

Every function takes a :mod:`view <repro.labels.views>` of one node and
returns a list of failure reasons (empty = the node accepts).  The checks
cover:

* Example SP — H(G) is a spanning tree rooted at a unique root, and every
  node knows its parent and children (the remark of Section 2.6);
* Example NumK — every node knows n;
* hierarchy-height agreement (ell);
* the Roots-string conditions RS0–RS5;
* the EndP/Parents conditions EPS0–EPS5, with EPS1 checked through the
  capped Or-EndP counters (NumK-style aggregation);
* the published J(v) bitmask and the top/bottom delimiter;
* the partition fields: part-root agreement, in-part distances, the EDIAM
  height bounds, piece-count agreement and piece well-formedness
  (Lemmas 6.4/6.5: diameter O(log n), O(log n) pieces per part).

All checks are *local* (node + neighbours) and run in O(1) time per round,
which makes this portion of the scheme a 1-proof labeling scheme: it is
trivially self-stabilizing (it "silently stabilizes").

Robustness note: the adversary may set registers to arbitrary values, so
every access is type-guarded; malformed state is itself a failure reason.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, List, Optional, Sequence

from .registers import (REG_BOT_BOUND, REG_BOT_COUNT, REG_BOT_DIST,
                        REG_BOT_ROOT, REG_DELIM, REG_DIST, REG_ELL, REG_ENDP,
                        REG_JMASK, REG_N, REG_ORENDP, REG_PARENT_ID,
                        REG_PARENT_PORT, REG_PARENTS, REG_PIECES_BOT,
                        REG_PIECES_TOP, REG_ROOTS, REG_SUBTREE, REG_TID,
                        REG_TOP_BOUND, REG_TOP_COUNT, REG_TOP_DIST,
                        REG_TOP_ROOT, REG_TOP_DIST)
from .strings import ENDP_DOWN, ENDP_NONE, ENDP_STAR, ENDP_UP
from .views import view_neighbor_at_port


def _is_nat(x: Any) -> bool:
    return isinstance(x, int) and not isinstance(x, bool) and x >= 0


def log_threshold(n: int) -> int:
    """The paper's ``log n`` size threshold: ceil(log2 n), at least 1."""
    if n <= 1:
        return 1
    return max(1, (n - 1).bit_length())


@lru_cache(maxsize=8192)
def _sorted_levels_tuple(jmask: int) -> tuple:
    levels = []
    j = 0
    while jmask:
        if jmask & 1:
            levels.append(j)
        jmask >>= 1
        j += 1
    return tuple(levels)


def sorted_levels(jmask: int) -> List[int]:
    """J(v) as a sorted list of levels, decoded from the bitmask.

    Decoded masks are memoized (the verifier decodes the same J(v) every
    step); a fresh list is returned so callers may slice and compare
    against other lists freely."""
    return list(_sorted_levels_tuple(jmask))


def level_is_bottom(jmask: int, delim: int, level: int) -> Optional[bool]:
    """Whether ``level`` is classified bottom for this node (None when the
    level is not in J(v))."""
    levels = sorted_levels(jmask)
    if level not in levels:
        return None
    return levels.index(level) < delim


# ---------------------------------------------------------------------------
# Example SP
# ---------------------------------------------------------------------------

def check_spanning_tree(view) -> List[str]:
    """The 1-PLS of Example SP plus the parent/children remark."""
    bad: List[str] = []
    pid = view.get(REG_PARENT_ID)
    pport = view.get(REG_PARENT_PORT)
    tid = view.get(REG_TID)
    dist = view.get(REG_DIST)
    if not _is_nat(dist):
        return ["SP: distance register malformed"]
    if not isinstance(tid, int):
        return ["SP: root-id register malformed"]
    if pid is None:
        if pport is not None:
            bad.append("SP: root with a parent port")
        if dist != 0:
            bad.append("SP: root with nonzero distance")
        if tid != view.node:
            bad.append("SP: root id differs from claimed tree root")
    else:
        if not isinstance(pid, int) or pid not in view.neighbors:
            return ["SP: parent is not a neighbour"]
        if view_neighbor_at_port(view, pport) != pid:
            bad.append("SP: parent port does not lead to the parent")
        if dist == 0:
            bad.append("SP: non-root with distance 0")
        elif view.read(pid, REG_DIST) != dist - 1:
            bad.append("SP: parent distance is not one less")
    for u in view.neighbors:
        if view.read(u, REG_TID) != tid:
            bad.append("SP: neighbours disagree on the tree root")
            break
    return bad


def tree_children(view) -> List[Any]:
    """Neighbours pointing at this node as their parent."""
    return [u for u in view.neighbors if view.read(u, REG_PARENT_ID) == view.node]


# ---------------------------------------------------------------------------
# Example NumK
# ---------------------------------------------------------------------------

def check_size(view) -> List[str]:
    """The 1-PLS of Example NumK: every node knows n."""
    bad: List[str] = []
    n = view.get(REG_N)
    st = view.get(REG_SUBTREE)
    if not _is_nat(n) or n < 1:
        return ["NumK: node-count register malformed"]
    if not _is_nat(st):
        return ["NumK: subtree-count register malformed"]
    for u in view.neighbors:
        if view.read(u, REG_N) != n:
            bad.append("NumK: neighbours disagree on n")
            break
    total = 1
    for c in tree_children(view):
        cst = view.read(c, REG_SUBTREE)
        total += cst if _is_nat(cst) else 0
    if st != total:
        bad.append("NumK: subtree count mismatch")
    if view.get(REG_PARENT_ID) is None and st != n:
        bad.append("NumK: root subtree count differs from n")
    return bad


# ---------------------------------------------------------------------------
# hierarchy height
# ---------------------------------------------------------------------------

def check_ell(view) -> List[str]:
    """All nodes agree on ell and ell <= ceil(log2 n) (Lemma 4.1)."""
    bad: List[str] = []
    ell = view.get(REG_ELL)
    n = view.get(REG_N)
    if not _is_nat(ell):
        return ["ELL: height register malformed"]
    for u in view.neighbors:
        if view.read(u, REG_ELL) != ell:
            bad.append("ELL: neighbours disagree on the hierarchy height")
            break
    if _is_nat(n) and n >= 1 and ell > log_threshold(n):
        bad.append("ELL: height exceeds ceil(log2 n)")
    return bad


# ---------------------------------------------------------------------------
# Roots strings: RS0 - RS5
# ---------------------------------------------------------------------------

def check_roots_string(view) -> List[str]:
    bad: List[str] = []
    roots = view.get(REG_ROOTS)
    ell = view.get(REG_ELL)
    if not isinstance(roots, str) or not isinstance(ell, int):
        return ["RS: roots string malformed"]
    if any(c not in "01*" for c in roots):
        return ["RS: roots string has invalid symbols"]
    if len(roots) != ell + 1:                                   # RS1
        return ["RS1: roots string length differs from ell+1"]
    seen_zero = False
    for c in roots:                                             # RS0
        if c == "0":
            seen_zero = True
        elif c == "1" and seen_zero:
            bad.append("RS0: a '1' appears after a '0'")
            break
    if roots[0] != "1":                                         # RS3
        bad.append("RS3: node is not the root of its level-0 singleton")
    is_root = view.get(REG_PARENT_ID) is None
    if is_root:
        if any(c == "0" for c in roots) or roots[-1] != "1":    # RS2
            bad.append("RS2: tree root's string must be [1,*]* ending in 1")
    else:
        if roots[-1] != "0":                                    # RS4
            bad.append("RS4: non-root must be a member at level ell")
        pid = view.get(REG_PARENT_ID)
        proots = view.read(pid, REG_ROOTS) if pid in view.neighbors else None
        for j, c in enumerate(roots):                           # RS5
            if c == "0":
                if (not isinstance(proots, str) or j >= len(proots)
                        or proots[j] == "*"):
                    bad.append("RS5: member of a fragment whose parent "
                               "has no fragment at that level")
                    break
    return bad


# ---------------------------------------------------------------------------
# EndP / Parents strings: EPS0 - EPS5 (EPS1 through Or-EndP)
# ---------------------------------------------------------------------------

def check_endp_parents(view) -> List[str]:
    bad: List[str] = []
    roots = view.get(REG_ROOTS)
    endp = view.get(REG_ENDP)
    pstr = view.get(REG_PARENTS)
    orendp = view.get(REG_ORENDP)
    ell = view.get(REG_ELL)
    if not isinstance(roots, str) or not isinstance(ell, int):
        return []  # reported by check_roots_string
    width = ell + 1
    if not isinstance(endp, str) or len(endp) != width or \
            any(c not in "udn*" for c in endp):
        return ["EPS: EndP string malformed"]
    if not isinstance(pstr, str) or len(pstr) != width or \
            any(c not in "01" for c in pstr):
        return ["EPS: Parents string malformed"]
    if not isinstance(orendp, tuple) or len(orendp) != width or \
            any(not _is_nat(x) or x > 2 for x in orendp):
        return ["EPS: Or-EndP counters malformed"]
    if len(roots) != width:
        return []

    pid = view.get(REG_PARENT_ID)
    is_root = pid is None
    children = tree_children(view)

    for j in range(width):
        # structural: '*' in EndP iff '*' in Roots
        if (endp[j] == ENDP_STAR) != (roots[j] == "*"):
            bad.append(f"EPS: EndP/Roots '*' mismatch at level {j}")
        # EPS0: my Parents bit points at my parent's EndP 'down'
        if pstr[j] == "1" and not is_root and pid in view.neighbors:
            pendp = view.read(pid, REG_ENDP)
            if not isinstance(pendp, str) or j >= len(pendp) or \
                    pendp[j] != ENDP_DOWN:
                bad.append(f"EPS0: Parents bit without a 'down' parent "
                           f"at level {j}")
        # EPS2: 'down' selects exactly one child
        if endp[j] == ENDP_DOWN:
            count = 0
            for c in children:
                cp = view.read(c, REG_PARENTS)
                if isinstance(cp, str) and j < len(cp) and cp[j] == "1":
                    count += 1
            if count != 1:
                bad.append(f"EPS2: 'down' endpoint with {count} marked "
                           f"children at level {j}")
        # EPS3
        if endp[j] == ENDP_UP:
            if roots[j] != "1":
                bad.append(f"EPS3: 'up' endpoint is not its fragment root "
                           f"at level {j}")
            if any(roots[i] == "1" for i in range(j + 1, width)):
                bad.append(f"EPS3: 'up' endpoint is a root above level {j}")
        # EPS4
        if pstr[j] == "1":
            if roots[j] == "0":
                bad.append(f"EPS4: Parents bit at a fragment member, "
                           f"level {j}")
            if any(roots[i] == "1" for i in range(j + 1, width)):
                bad.append(f"EPS4: Parents bit below a root above level {j}")
        # EPS1 via Or-EndP (NumK-style aggregation, capped at 2)
        if roots[j] == "*":
            if orendp[j] != 0:
                bad.append(f"EPS1: Or-EndP nonzero without a fragment at "
                           f"level {j}")
            continue
        expected = 1 if endp[j] in (ENDP_UP, ENDP_DOWN) else 0
        for c in children:
            croots = view.read(c, REG_ROOTS)
            corp = view.read(c, REG_ORENDP)
            if isinstance(croots, str) and j < len(croots) and \
                    croots[j] == "0" and isinstance(corp, tuple) and \
                    j < len(corp) and _is_nat(corp[j]):
                expected += corp[j]
        if orendp[j] != min(2, expected):
            bad.append(f"EPS1: Or-EndP aggregation mismatch at level {j}")
        if roots[j] == "1":
            # fragment root: exactly one endpoint below (0 for T itself)
            is_whole_tree = (j == ell)
            want = 0 if is_whole_tree else 1
            if orendp[j] != want:
                bad.append(f"EPS1: fragment at level {j} has "
                           f"{orendp[j]} candidate endpoints, wants {want}")

    # EPS5
    if not is_root:
        if not any(pstr[j] == "1" or endp[j] == ENDP_UP for j in range(width)):
            bad.append("EPS5: non-root with no level joining its parent")
    return bad


# ---------------------------------------------------------------------------
# J(v) bitmask and the top/bottom delimiter
# ---------------------------------------------------------------------------

def check_jmask_delim(view) -> List[str]:
    bad: List[str] = []
    roots = view.get(REG_ROOTS)
    jmask = view.get(REG_JMASK)
    delim = view.get(REG_DELIM)
    if not isinstance(roots, str):
        return []
    if not _is_nat(jmask):
        return ["JM: level bitmask malformed"]
    expected = 0
    for j, c in enumerate(roots):
        if c != "*":
            expected |= 1 << j
    if jmask != expected:
        bad.append("JM: published level bitmask differs from Roots string")
    if not _is_nat(delim) or delim > bin(expected).count("1"):
        bad.append("JM: top/bottom delimiter out of range")
        return bad
    # fragment classification must agree along tree edges sharing a level
    pid = view.get(REG_PARENT_ID)
    if pid is not None and pid in view.neighbors and isinstance(delim, int):
        proots = view.read(pid, REG_ROOTS)
        pjmask = view.read(pid, REG_JMASK)
        pdelim = view.read(pid, REG_DELIM)
        if isinstance(proots, str) and _is_nat(pjmask) and _is_nat(pdelim):
            for j, c in enumerate(roots):
                if c != "0":
                    continue  # shares the level-j fragment only when member
                mine = level_is_bottom(expected, delim, j)
                theirs = level_is_bottom(pjmask, pdelim, j)
                if theirs is not None and mine is not None and mine != theirs:
                    bad.append(f"JM: top/bottom class of level {j} differs "
                               "from the parent's")
                    break
    return bad


# ---------------------------------------------------------------------------
# partitions: part roots, distances, EDIAM bounds, piece shape
# ---------------------------------------------------------------------------

def _check_partition(view, tag: str, reg_root: str, reg_dist: str,
                     reg_bound: str, reg_count: str, reg_pieces: str,
                     bound_cap: int, count_cap: int) -> List[str]:
    bad: List[str] = []
    part_root = view.get(reg_root)
    dist = view.get(reg_dist)
    bound = view.get(reg_bound)
    count = view.get(reg_count)
    pieces = view.get(reg_pieces)
    if not isinstance(part_root, int):
        return [f"{tag}: part root malformed"]
    if not _is_nat(dist) or not _is_nat(bound) or not _is_nat(count):
        return [f"{tag}: part registers malformed"]
    if bound > bound_cap:
        bad.append(f"{tag}: part height bound exceeds O(log n)")
    if dist > bound:
        bad.append(f"{tag}: in-part distance exceeds the claimed bound")
    if count > count_cap:
        bad.append(f"{tag}: part stores more than O(log n) pieces")
    pid = view.get(REG_PARENT_ID)
    same_part = (pid is not None and pid in view.neighbors
                 and view.read(pid, reg_root) == part_root)
    if same_part:
        if view.read(pid, reg_dist) != dist - 1:
            bad.append(f"{tag}: in-part distance not one more than parent's")
        if view.read(pid, reg_bound) != bound:
            bad.append(f"{tag}: part height bound differs from parent's")
        if view.read(pid, reg_count) != count:
            bad.append(f"{tag}: piece count differs from parent's")
    else:
        if part_root != view.node:
            bad.append(f"{tag}: part root is not an ancestor inside the part")
        if dist != 0:
            bad.append(f"{tag}: part root with nonzero in-part distance")
    if not isinstance(pieces, tuple) or len(pieces) > 2:
        bad.append(f"{tag}: stored pieces malformed")
    else:
        for pc in pieces:
            if (not isinstance(pc, tuple) or len(pc) != 3
                    or not isinstance(pc[0], int) or not _is_nat(pc[1])):
                bad.append(f"{tag}: stored piece is not (root, level, weight)")
                break
    return bad


def check_partitions(view) -> List[str]:
    n = view.get(REG_N)
    if not _is_nat(n) or n < 1:
        return []  # reported by check_size
    cap = log_threshold(n)
    bad = _check_partition(view, "TOPP", REG_TOP_ROOT, REG_TOP_DIST,
                           REG_TOP_BOUND, REG_TOP_COUNT, REG_PIECES_TOP,
                           bound_cap=4 * cap + 4, count_cap=2 * cap + 2)
    bad += _check_partition(view, "BOTP", REG_BOT_ROOT, REG_BOT_DIST,
                            REG_BOT_BOUND, REG_BOT_COUNT, REG_PIECES_BOT,
                            bound_cap=cap + 2, count_cap=2 * cap + 2)
    return bad


#: every static check, in evaluation order.
ALL_STATIC_CHECKS = (
    check_spanning_tree,
    check_size,
    check_ell,
    check_roots_string,
    check_endp_parents,
    check_jmask_delim,
    check_partitions,
)


def static_check(view) -> List[str]:
    """Run every 1-round local check; returns all failure reasons."""
    bad: List[str] = []
    for check in ALL_STATIC_CHECKS:
        bad.extend(check(view))
    return bad
