"""Register names of the marker's label assignment.

Every register holds O(log n) bits; together they form the node label of
the proof labeling scheme (plus the verifier's working registers defined
in :mod:`repro.trains` / :mod:`repro.verification`).
"""

# -- spanning tree (Example SP plus its remark) ----------------------------
REG_PARENT_ID = "pid"        # parent identity, None at the root
REG_PARENT_PORT = "pport"    # component c(v): port to the parent, None at root
REG_TID = "tid"              # identity of the root of T
REG_DIST = "dist"            # hop distance to the root in T

# -- node count (Example NumK) ---------------------------------------------
REG_N = "n"                  # claimed number of nodes
REG_SUBTREE = "st"           # nodes in the subtree of v

# -- hierarchy strings (Section 5) ------------------------------------------
REG_ELL = "ell"              # hierarchy height (all nodes agree)
REG_ROOTS = "roots"          # Roots string, chars {'1','0','*'}
REG_ENDP = "endp"            # EndP string, chars {'u','d','n','*'}
REG_PARENTS = "pstr"         # Parents string, chars {'0','1'}
REG_ORENDP = "orendp"        # Or-EndP capped counts, tuple of 0/1/2
REG_JMASK = "jmask"          # bitmask of J(v) (published for G-neighbours)
REG_DELIM = "delim"          # how many of v's levels are bottom (prefix)

# -- partitions Top / Bottom (Section 6) ------------------------------------
REG_TOP_ROOT = "trt"         # identity of the root of v's Top part
REG_TOP_DIST = "tdist"       # distance to the Top part root, inside the part
REG_TOP_BOUND = "tbound"     # claimed bound on the Top part height (EDIAM)
REG_TOP_COUNT = "tcount"     # number of pieces stored in the Top part
REG_BOT_ROOT = "brt"         # identity of the root of v's Bottom part
REG_BOT_DIST = "bdist"
REG_BOT_BOUND = "bbound"
REG_BOT_COUNT = "bcount"
REG_PIECES_TOP = "pc_top"    # permanently stored pieces, tuple of
REG_PIECES_BOT = "pc_bot"    # (root_id, level, weight) triples (<= 2 each)

#: every label register, in a stable order (used by fault injection and
#: memory accounting).
LABEL_REGISTERS = (
    REG_PARENT_ID, REG_PARENT_PORT, REG_TID, REG_DIST,
    REG_N, REG_SUBTREE,
    REG_ELL, REG_ROOTS, REG_ENDP, REG_PARENTS, REG_ORENDP,
    REG_JMASK, REG_DELIM,
    REG_TOP_ROOT, REG_TOP_DIST, REG_TOP_BOUND, REG_TOP_COUNT,
    REG_BOT_ROOT, REG_BOT_DIST, REG_BOT_BOUND, REG_BOT_COUNT,
    REG_PIECES_TOP, REG_PIECES_BOT,
)

#: schema declarations ``(name, kind, default)`` of the label registers.
#: The *verified* values are of the declared kinds; the adversary may
#: still plant anything (registers store raw values — kinds drive the
#: write-time nat-coercion cache, not validation).
LABEL_REGISTER_DECLS = (
    (REG_PARENT_ID, "opaque", None),   # int, None at the root
    (REG_PARENT_PORT, "opaque", None),
    (REG_TID, "nat", None),
    (REG_DIST, "nat", None),
    (REG_N, "nat", None),
    (REG_SUBTREE, "nat", None),
    (REG_ELL, "nat", None),
    (REG_ROOTS, "str", None),
    (REG_ENDP, "str", None),
    (REG_PARENTS, "str", None),
    (REG_ORENDP, "tuple", None),
    (REG_JMASK, "nat", None),
    (REG_DELIM, "nat", None),
    (REG_TOP_ROOT, "nat", None),
    (REG_TOP_DIST, "nat", None),
    (REG_TOP_BOUND, "nat", None),
    (REG_TOP_COUNT, "nat", None),
    (REG_BOT_ROOT, "nat", None),
    (REG_BOT_DIST, "nat", None),
    (REG_BOT_BOUND, "nat", None),
    (REG_BOT_COUNT, "nat", None),
    (REG_PIECES_TOP, "tuple", None),
    (REG_PIECES_BOT, "tuple", None),
)


def declare_label_registers(schema) -> None:
    """Declare the marker's label registers into a register schema.

    Labels are declared ``stable``: they change only under fault
    injection or relabeling, so writes to them bump the register file's
    stable version and invalidate the protocols' label-derived caches
    (part topology, Ask levels, static-check results, budgets)."""
    for name, kind, default in LABEL_REGISTER_DECLS:
        schema.declare(name, kind, default, stable=True)
