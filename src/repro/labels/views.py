"""Label views: one interface for centralized and protocol verification.

All local checks are written against the small :class:`LabelView`
interface.  During a simulation the verifier protocol passes the live
:class:`repro.sim.NodeContext`; in tests and markers a :class:`StaticView`
wraps a plain ``{node: {register: value}}`` mapping.  Either way a check
sees exactly what the paper's verifier sees: the node's own registers and
its neighbours' registers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..graphs.weighted import NodeId, WeightedGraph


class StaticView:
    """Read-only view over a centralized label assignment."""

    def __init__(self, graph: WeightedGraph, node: NodeId,
                 labels: Mapping[NodeId, Mapping[str, Any]]) -> None:
        self.graph = graph
        self.node = node
        self._labels = labels

    def get(self, name: str, default: Any = None) -> Any:
        return self._labels[self.node].get(name, default)

    def read(self, neighbor: NodeId, name: str, default: Any = None) -> Any:
        return self._labels[neighbor].get(name, default)

    @property
    def neighbors(self) -> List[NodeId]:
        return self.graph.neighbors(self.node)

    @property
    def degree(self) -> int:
        return self.graph.degree(self.node)

    def weight(self, neighbor: NodeId):
        return self.graph.weight(self.node, neighbor)

    def port(self, neighbor: NodeId) -> int:
        return self.graph.port(self.node, neighbor)

    def neighbor_at_port(self, port: int) -> Optional[NodeId]:
        if 0 <= port < self.graph.port_count(self.node):
            return self.graph.neighbor_at_port(self.node, port)
        return None


def view_neighbor_at_port(view, port) -> Optional[NodeId]:
    """``neighbor_at_port`` for any view (NodeContext lacks the method).
    Out-of-range ports and the tombstoned slots of removed neighbours
    both read as ``None``."""
    if hasattr(view, "neighbor_at_port"):
        return view.neighbor_at_port(port)
    graph = view.network.graph
    if not isinstance(port, int):
        return None
    if 0 <= port < graph.port_count(view.node):
        return graph.neighbor_at_port(view.node, port)
    return None


def all_views(graph: WeightedGraph,
              labels: Mapping[NodeId, Mapping[str, Any]]):
    """One StaticView per node (centralized verification sweep)."""
    return [StaticView(graph, v, labels) for v in graph.nodes()]
