"""Sustained-churn robustness tests (``repro.sim.churn`` + the engine's
``churn`` fault axis).

Three layers of guarantees:

* **script layer** — :class:`ChurnScript` streams are deterministic in
  (graph, seed, params) and honour their structural invariants: at most
  one node down, crash victims never cut vertices, every crash paired
  with an immediate rejoin, reweights confined to non-MST edges with
  fresh strictly-larger weights (the unique MST survives);
* **driver layer** — :func:`run_with_churn` is bit-for-bit identical
  across dict/schema/columnar/numpy storage, under synchronous and
  asynchronous daemons, the daemons re-cover exactly the survivors
  after ``topology_changed()``, and a reweight-only stream never raises
  an alarm (false-alarm immunity: the MST did not change);
* **engine layer** — the ``churn`` fault axis produces per-event
  re-stabilization metrics on the scenario record, deterministically
  and storage-independently, at the acceptance scale (500 nodes,
  crash + rejoin + reweight, all four backends).
"""

import pytest

from repro.engine import ScenarioSpec, axis, run_scenario, scenario_record
from repro.graphs.generators import random_connected_graph
from repro.sim import (STORAGE_KINDS, AsynchronousScheduler, ChurnEvent,
                       ChurnScript, ConflictFreeDaemon,
                       LocalityBatchDaemon, PermutationDaemon,
                       SynchronousScheduler, TiledConflictFreeDaemon,
                       run_with_churn)
from repro.sim.churn import _articulation_points, _mst_edges
from repro.trains.comparison import rotation_settled
from repro.verification import make_network
from repro.verification.hybrid import HybridVerifierProtocol
from repro.verification.verifier import MstVerifierProtocol

STORAGES = STORAGE_KINDS


def _protocol(kind, synchronous):
    if kind == "verifier":
        return MstVerifierProtocol(synchronous=synchronous)
    if kind == "hybrid":
        return HybridVerifierProtocol(synchronous=synchronous)
    from repro.baselines.pls_sqlog import SqLogPlsProtocol
    return SqLogPlsProtocol()


def _daemon(kind, g, seed):
    if kind == "locality":
        return LocalityBatchDaemon(g, seed=seed)
    if kind == "independent":
        return ConflictFreeDaemon(g, seed=seed)
    if kind == "tiled":
        return TiledConflictFreeDaemon(g, seed=seed)
    return PermutationDaemon(seed=seed)


# ---------------------------------------------------------------------------
# script layer
# ---------------------------------------------------------------------------

def test_script_deterministic_in_graph_and_seed(campaign_seed):
    g = random_connected_graph(14, 24, seed=campaign_seed % 991)
    a = ChurnScript.generate(g, seed=campaign_seed, events=8)
    b = ChurnScript.generate(g, seed=campaign_seed, events=8)
    assert a.key() == b.key()
    assert list(a) == list(b)
    c = ChurnScript.generate(g, seed=campaign_seed + 1, events=8)
    assert a.key() != c.key()
    # generation never mutates the caller's graph
    assert g.topology_key() == random_connected_graph(
        14, 24, seed=campaign_seed % 991).topology_key()


def test_script_invariants(campaign_seed):
    g = random_connected_graph(16, 26, seed=campaign_seed % 977)
    tree = _mst_edges(g)
    max_w = max(w for _, _, w in g.edges())
    script = ChurnScript.generate(g, seed=campaign_seed, events=12)
    work = g.copy()
    down = None
    last_w = max_w
    for i, ev in enumerate(script):
        assert ev.mark == i
        if ev.kind == "crash":
            assert down is None, "two nodes down at once"
            assert ev.node not in _articulation_points(work)
            assert work.n - 1 >= 4
            stub = work.remove_node(ev.node)
            down = (ev.node, stub)
        elif ev.kind == "rejoin":
            assert down is not None and down[0] == ev.node
            # a crash is always healed by the very next event
            assert script.events[i - 1].kind == "crash"
            work.restore_node(ev.node, down[1])
            down = None
        else:
            assert ev.kind == "reweight"
            assert ev.edge not in tree, "reweighted an MST edge"
            assert ev.weight > last_w, "weights must stay distinct"
            last_w = ev.weight
            work.set_weight(*ev.edge, ev.weight)
    assert down is None, "script left a node down"
    # the churned graph's MST is the original one
    assert _mst_edges(work) == tree


def test_script_respects_kind_gates():
    g = random_connected_graph(12, 20, seed=3)
    crash_only = ChurnScript.generate(g, seed=9, events=6, reweight=False)
    assert {e.kind for e in crash_only} <= {"crash", "rejoin"}
    rw_only = ChurnScript.generate(g, seed=9, events=6, crash=False)
    assert {e.kind for e in rw_only} == {"reweight"}
    # a tree has no non-MST edges: nothing to reweight
    tree_g = random_connected_graph(8, 0, seed=5)
    assert not ChurnScript.generate(tree_g, seed=9, events=4,
                                    crash=False).events


def test_script_window_floor_blocks_tiny_graphs():
    g = random_connected_graph(5, 6, seed=2)
    script = ChurnScript.generate(g, seed=4, events=6, reweight=False)
    work = g.copy()
    for ev in script:
        if ev.kind == "crash":
            assert work.n >= 5
            work.remove_node(ev.node)
        elif ev.kind == "rejoin":
            work.restore_node(ev.node, g.copy().remove_node(ev.node))


# ---------------------------------------------------------------------------
# driver layer: storage & daemon agreement
# ---------------------------------------------------------------------------

def _settle_fully(sched, net, budget=800):
    """Run until the rotation settle predicate holds (honest labels
    never alarm, so the predicate is the only stop condition)."""
    sched.run(budget, stop_when=rotation_settled)
    assert rotation_settled(net) and not net.alarms()


def _drive(graph, storage, schedule, proto_kind, seed, settle=24,
           window=40, events=6, n_rounds=None):
    g = graph.copy()           # the driver mutates the graph in place
    net = make_network(g)
    proto = _protocol(proto_kind, schedule == "sync")
    if schedule == "sync":
        sched = SynchronousScheduler(net, proto, storage=storage)
    else:
        sched = AsynchronousScheduler(net, proto,
                                      daemon=_daemon(schedule, g, 7),
                                      storage=storage)
    sched.run(settle)
    script = ChurnScript.generate(g, seed=seed, events=events)
    settled = rotation_settled if proto_kind != "sqlog" else None
    report = run_with_churn(net, sched, proto, script, window=window,
                            settled=settled)
    final = {v: dict(net.registers[v]) for v in sorted(net.graph.nodes())}
    return report.as_tuple(), final, dict(net.alarms())


@pytest.mark.parametrize("schedule", ["sync", "permutation",
                                      "independent", "tiled"])
def test_churn_bitwise_equal_across_storages(schedule, campaign_seed):
    """One churn script, four backends: identical per-event metrics and
    identical final registers — the dynamic-topology machinery (port
    tombstones, columnar freelist rows, daemon cache invalidation)
    never leaks into observable state."""
    g = random_connected_graph(14, 24, seed=campaign_seed % 1009)
    ref = _drive(g, "dict", schedule, "verifier", campaign_seed)
    for storage in STORAGES:
        got = _drive(g, storage, schedule, "verifier", campaign_seed)
        assert got == ref, storage


@pytest.mark.parametrize("proto_kind", ["hybrid", "sqlog"])
def test_churn_storage_agreement_other_protocols(proto_kind,
                                                 campaign_seed):
    g = random_connected_graph(12, 20, seed=campaign_seed % 997)
    ref = _drive(g, "dict", "sync", proto_kind, campaign_seed)
    for storage in STORAGES:
        assert _drive(g, storage, "sync", proto_kind,
                      campaign_seed) == ref, storage


def test_reweight_only_stream_is_alarm_free(campaign_seed):
    """Bumping non-MST edges preserves the unique MST, so a sound
    verifier must stay silent: every window benign, availability 1."""
    g = random_connected_graph(12, 22, seed=campaign_seed % 1013)
    net = make_network(g)
    proto = _protocol("verifier", True)
    sched = SynchronousScheduler(net, proto, storage="columnar")
    _settle_fully(sched, net)
    script = ChurnScript.generate(g, seed=campaign_seed, events=5,
                                  crash=False)
    assert script.events, "expected a non-tree edge to reweight"
    report = run_with_churn(net, sched, proto, script, window=20,
                            settled=rotation_settled)
    assert report.redetect == (None,) * len(script)
    assert report.alarms == (0,) * len(script)
    assert report.quiesce == (0,) * len(script)
    assert report.availability == 1.0


def test_crash_rejoin_redetects_and_recovers(campaign_seed):
    """A crash breaks the settled proof state at the survivors' ports;
    the verifier must alarm within the window, and after the rejoin
    (wiped working registers) the network must re-quiesce."""
    g = random_connected_graph(12, 20, seed=campaign_seed % 983)
    net = make_network(g)
    proto = _protocol("verifier", True)
    sched = SynchronousScheduler(net, proto, storage="columnar")
    _settle_fully(sched, net)
    script = ChurnScript.generate(g, seed=campaign_seed, events=2,
                                  reweight=False)
    kinds = [e.kind for e in script]
    assert kinds[:2] == ["crash", "rejoin"]
    report = run_with_churn(net, sched, proto, script, window=700,
                            settled=rotation_settled)
    assert report.redetect[0] is not None, "crash went undetected"
    assert report.alarms[0] >= 1
    # after the rejoin the protocol re-settles inside the window
    assert report.quiesce[-1] is not None, "never re-quiesced"
    assert not net.alarms()
    assert 0.0 <= report.availability <= 1.0


@pytest.mark.parametrize("daemon_kind", ["permutation", "locality",
                                         "independent", "tiled"])
def test_daemons_recover_survivors_after_topology_change(daemon_kind):
    """After a crash + ``topology_changed()`` the daemon's rounds must
    keep completing — i.e. its coverage target is exactly the surviving
    nodes — and every survivor keeps making progress (rotations
    advance).  A daemon still waiting on the dead node would never
    finish a round; one still activating it would KeyError."""
    activated = set()

    class Recorder(MstVerifierProtocol):
        def step(self, ctx):
            activated.add(ctx.node)
            return super().step(ctx)

    g = random_connected_graph(10, 16, seed=11)
    net = make_network(g)
    proto = Recorder(synchronous=False)
    # dict storage + bulk off: every activation goes through the scalar
    # ``step`` above, so the daemon's coverage is directly observable
    sched = AsynchronousScheduler(net, proto,
                                  daemon=_daemon(daemon_kind, g, 5),
                                  storage="dict", bulk=False)
    sched.run(6)
    cuts = _articulation_points(net.graph)
    victim = next(v for v in net.graph.nodes() if v not in cuts)
    stub = net.remove_node(victim)
    sched.topology_changed()
    activated.clear()
    assert sched.run(3) == 3, "round never completed without the victim"
    survivors = set(net.graph.nodes())
    assert victim not in survivors
    assert activated == survivors, \
        "daemon coverage is not exactly the survivors"
    # and the rejoin is symmetric: the victim participates again
    net.add_node(victim, stub)
    proto.init_node(net.local_context(victim))
    sched.topology_changed()
    activated.clear()
    assert sched.run(3) == 3
    assert activated == set(net.graph.nodes())
    assert victim in activated


# ---------------------------------------------------------------------------
# engine layer
# ---------------------------------------------------------------------------

def _strip(rec):
    return {k: v for k, v in rec.items()
            if k not in ("spec", "schedule", "key", "wall_time",
                         "activations", "super_batches",
                         "batches_coalesced", "rows_fused",
                         "rows_residual", "rows_scalar", "plan_rebuilds",
                         "plan_refreshes")}


def test_engine_churn_records_are_storage_independent(campaign_seed):
    base = dict(topology=axis("random", n=16, extra=10),
                fault=axis("churn", events=5),
                protocol=axis("verifier"), seed=campaign_seed)
    recs = []
    for storage in STORAGES:
        spec = ScenarioSpec(schedule=axis("sync", storage=storage),
                            **base)
        result = run_scenario(spec)
        assert result.status == "ok"
        assert result.violation is None
        rec = scenario_record(result)
        assert rec["churn_events"] == len(rec["rounds_to_redetect"]) \
            == len(rec["rounds_to_quiesce"]) == len(rec["alarms_per_event"])
        assert rec["worst_redetect"] == max(
            (r for r in rec["rounds_to_redetect"] if r is not None),
            default=None)
        assert rec["unavailability"] is not None
        assert 0.0 <= rec["availability"] <= 1.0
        recs.append(_strip(rec))
    assert all(r == recs[0] for r in recs[1:])


def test_engine_churn_deterministic_and_seed_sensitive(campaign_seed):
    spec = ScenarioSpec(topology=axis("random", n=14, extra=8),
                        fault=axis("churn", events=4, window=60),
                        schedule=axis("sync", storage="numpy"),
                        protocol=axis("hybrid"), seed=campaign_seed)
    a = _strip(scenario_record(run_scenario(spec)))
    b = _strip(scenario_record(run_scenario(spec)))
    assert a == b
    other = _strip(scenario_record(run_scenario(
        ScenarioSpec(topology=spec.topology, fault=spec.fault,
                     schedule=spec.schedule, protocol=spec.protocol,
                     seed=campaign_seed + 1))))
    assert a != other


def test_engine_churn_rejects_unknown_params():
    from repro.engine import ScenarioError
    spec = ScenarioSpec(topology=axis("random", n=10, extra=6),
                        fault=axis("churn", typo=1),
                        schedule=axis("sync"),
                        protocol=axis("verifier"), seed=1)
    with pytest.raises(ScenarioError, match="typo"):
        run_scenario(spec)


def test_acceptance_500_node_churn_all_backends(campaign_seed):
    """The issue's acceptance cell: a 500-node scenario under a
    crash + rejoin + reweight stream runs identically on all four
    storage backends."""
    g = random_connected_graph(500, 750, seed=campaign_seed % 1021)
    script = ChurnScript.generate(g, seed=campaign_seed, events=6)
    kinds = {e.kind for e in script}
    assert kinds == {"crash", "rejoin", "reweight"}, kinds
    ref = None
    for storage in STORAGES:
        work = g.copy()
        net = make_network(work)
        proto = _protocol("verifier", True)
        sched = SynchronousScheduler(net, proto, storage=storage)
        sched.run(60)
        report = run_with_churn(net, sched, proto, script, window=80,
                                settled=rotation_settled)
        got = (report.as_tuple(),
               {v: dict(net.registers[v])
                for v in sorted(net.graph.nodes())})
        if ref is None:
            ref = got
        else:
            assert got == ref, storage


def test_churn_event_identity():
    a = ChurnEvent(0, "crash", node=3)
    b = ChurnEvent(0, "crash", node=3)
    c = ChurnEvent(1, "crash", node=3)
    assert a == b and hash(a) == hash(b) and a != c
    assert "reweight" in repr(ChurnEvent(2, "reweight", edge=(1, 2),
                                         weight=9))
