"""Verifier soundness: every faulty situation is detected (second bullet
of Section 2.4) — non-MST instances under the strongest consistent
adversary, random label corruption, and targeted piece corruption."""

import pytest

from repro.graphs import kruskal_mst
from repro.graphs.generators import random_connected_graph
from repro.labels import registers as R
from repro.verification import (labels_for_claimed_tree, run_detection,
                                run_reject_instance, swap_one_mst_edge)

MAX_ROUNDS = 6000


@pytest.mark.parametrize("seed", range(4))
def test_rejects_non_mst_sync(seed):
    g = random_connected_graph(18, 30, seed=seed)
    wrong = swap_one_mst_edge(g, kruskal_mst(g))
    assert wrong is not None
    adv = labels_for_claimed_tree(g, wrong)
    res = run_reject_instance(g, adv.labels, synchronous=True,
                              max_rounds=MAX_ROUNDS)
    assert res.detected
    assert any("C2" in r or "C1" in r for r in res.alarms.values()), \
        res.alarms


def test_rejects_non_mst_async():
    g = random_connected_graph(14, 22, seed=5)
    wrong = swap_one_mst_edge(g, kruskal_mst(g))
    adv = labels_for_claimed_tree(g, wrong)
    res = run_reject_instance(g, adv.labels, synchronous=False,
                              max_rounds=MAX_ROUNDS)
    assert res.detected


def test_accepts_true_mst_via_adversary_path():
    """labels_for_claimed_tree on the real MST = the honest marker."""
    g = random_connected_graph(16, 26, seed=6)
    honest = labels_for_claimed_tree(g, kruskal_mst(g))
    res = run_reject_instance(g, honest.labels, synchronous=True,
                              max_rounds=900)
    assert not res.detected, res.alarms


@pytest.mark.parametrize("seed", range(3))
def test_detects_random_corruption(seed):
    g = random_connected_graph(16, 26, seed=seed + 20)

    def inject(net, inj):
        inj.corrupt_random_nodes(1, fraction=0.5)

    res = run_detection(g, inject, synchronous=True,
                        max_rounds=MAX_ROUNDS, seed=seed)
    assert res.detected
    assert res.rounds_to_detection is not None


def test_detects_piece_weight_lie():
    """Corrupting a stored piece's claimed minimum weight must surface
    through the trains (AGREE or C1/C2)."""
    g = random_connected_graph(16, 26, seed=31)

    def inject(net, inj):
        for v in net.graph.nodes():
            pieces = net.registers[v].get(R.REG_PIECES_TOP) or ()
            if pieces:
                z, lvl, w = pieces[0]
                new = ((z, lvl, (w or 0) + 1),) + tuple(pieces[1:])
                inj.corrupt_register(v, R.REG_PIECES_TOP, new)
                return
        raise AssertionError("no stored piece found")

    res = run_detection(g, inject, synchronous=True, max_rounds=MAX_ROUNDS)
    assert res.detected


def test_detects_piece_root_lie():
    g = random_connected_graph(16, 26, seed=32)

    def inject(net, inj):
        for v in net.graph.nodes():
            pieces = net.registers[v].get(R.REG_PIECES_BOT) or ()
            if pieces:
                z, lvl, w = pieces[0]
                new = ((z + 1, lvl, w),) + tuple(pieces[1:])
                inj.corrupt_register(v, R.REG_PIECES_BOT, new)
                return
        raise AssertionError("no stored piece found")

    res = run_detection(g, inject, synchronous=True, max_rounds=MAX_ROUNDS)
    assert res.detected


def test_detects_erased_pieces():
    """Erasing a node's stored pieces starves the part (train cycle
    misses levels or carries the wrong count)."""
    g = random_connected_graph(16, 26, seed=33)

    def inject(net, inj):
        for v in net.graph.nodes():
            if net.registers[v].get(R.REG_PIECES_TOP):
                inj.corrupt_register(v, R.REG_PIECES_TOP, ())
                return

    res = run_detection(g, inject, synchronous=True, max_rounds=MAX_ROUNDS)
    assert res.detected


def test_detects_scrambled_node():
    g = random_connected_graph(14, 20, seed=34)

    def inject(net, inj):
        inj.scramble_node(net.graph.nodes()[3])

    res = run_detection(g, inject, synchronous=True, max_rounds=MAX_ROUNDS)
    assert res.detected


def test_dynamic_train_state_corruption_self_heals():
    """Corrupting the train *mechanics* (pipeline pointers, rotation
    accounting) on a correct instance must not produce an alarm — the
    trains self-stabilize (Observation 8.1).  Corrupting pieces in
    transit (the broadcast buffers) is a detectable fault per Section 8
    and is exercised by the other tests."""
    from repro.sim.schedulers import SynchronousScheduler
    from repro.verification import make_network
    from repro.verification.verifier import MstVerifierProtocol

    g = random_connected_graph(12, 18, seed=35)
    network = make_network(g)
    protocol = MstVerifierProtocol(synchronous=True)
    sched = SynchronousScheduler(network, protocol)
    sched.run(400)
    assert not network.alarms()
    mech = ("out", "src", "cyc", "done", "act", "tak", "bseq",
            "seen", "last", "cnt", "sync", "wd", "bad")
    for v in g.nodes()[:3]:
        regs = network.registers[v]
        for prefix in ("tt_", "bt_"):
            for name in mech:
                if prefix + name in regs:
                    regs[prefix + name] = 1
    sched.run(900)
    assert not network.alarms(), network.alarms()


def test_detection_distance_local():
    """Theorem 8.5: detection within the O(f log n) locality."""
    import math
    g = random_connected_graph(24, 40, seed=36)

    def inject(net, inj):
        inj.corrupt_random_nodes(1, fraction=0.5)

    res = run_detection(g, inject, synchronous=True, max_rounds=MAX_ROUNDS,
                        seed=4)
    assert res.detected
    if res.detection_distance is not None:
        bound = 4 * (1 + math.ceil(math.log2(g.n)))
        assert res.detection_distance <= bound
