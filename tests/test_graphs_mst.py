"""Reference MST algorithms agree with each other and with the MST
characterization (cycle property)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (GraphError, boruvka_mst, is_mst, kruskal_mst,
                          mst_weight, prim_mst)
from repro.graphs.generators import (complete_graph, grid_graph,
                                     random_connected_graph)
from repro.graphs.weights import (ensure_distinct_weights,
                                  lexicographic_weight,
                                  with_verification_weights)
from repro.graphs.weighted import WeightedGraph, edge_key


@pytest.mark.parametrize("seed", range(6))
def test_algorithms_agree(seed):
    g = random_connected_graph(24, 40, seed=seed)
    k = kruskal_mst(g)
    assert prim_mst(g) == k
    assert boruvka_mst(g) == k
    assert is_mst(g, k)


def test_disconnected_raises():
    g = WeightedGraph()
    g.add_edge(1, 2, 1)
    g.add_node(3)
    with pytest.raises(GraphError):
        kruskal_mst(g)
    with pytest.raises(GraphError):
        prim_mst(g)


def test_is_mst_rejects_non_minimal():
    g = complete_graph(6, seed=2)
    mst = kruskal_mst(g)
    # swap in the heaviest edge
    heaviest = max(g.edges(), key=lambda e: e[2])
    e = edge_key(heaviest[0], heaviest[1])
    if e in mst:  # pragma: no cover - heaviest edge is never in the MST
        pytest.skip("heaviest edge in MST")
    from repro.graphs.spanning import RootedTree
    tree = RootedTree.from_edges(g, mst, g.nodes()[0])
    path = tree.tree_path(heaviest[0], heaviest[1])
    drop = (path[0], path[1])
    wrong = set(mst)
    wrong.remove(edge_key(*drop))
    wrong.add(e)
    from repro.graphs.spanning import is_spanning_tree
    if is_spanning_tree(g, wrong):
        assert not is_mst(g, wrong)


def test_mst_weight():
    g = grid_graph(2, 2, seed=0)
    assert mst_weight(g) == sum(sorted(w for _, _, w in g.edges())[:3])


def test_is_mst_single_node():
    g = WeightedGraph()
    g.add_node(7)
    assert is_mst(g, set())


class TestVerificationWeights:
    """The omega' modification of footnote 1."""

    def _tied_graph(self):
        g = WeightedGraph()
        g.add_edge(1, 2, 5)
        g.add_edge(2, 3, 5)
        g.add_edge(1, 3, 5)
        return g

    def test_produces_distinct(self):
        g = self._tied_graph()
        g2 = with_verification_weights(g, [(1, 2), (2, 3)])
        assert g2.has_distinct_weights()

    def test_tree_edges_beat_ties(self):
        g = self._tied_graph()
        tree = {(1, 2), (2, 3)}
        g2 = with_verification_weights(g, tree)
        # the candidate tree is an MST of the re-weighted graph
        assert kruskal_mst(g2) == tree

    def test_mst_iff_preserved(self):
        # candidate tree that is NOT an MST under a non-tied instance
        g = WeightedGraph()
        g.add_edge(1, 2, 1)
        g.add_edge(2, 3, 2)
        g.add_edge(1, 3, 9)
        wrong = {(1, 2), (1, 3)}
        g2 = with_verification_weights(g, wrong)
        assert not is_mst(g2, wrong)
        right = {(1, 2), (2, 3)}
        g3 = with_verification_weights(g, right)
        assert is_mst(g3, right)

    def test_ensure_distinct_passthrough(self):
        g = random_connected_graph(10, 12, seed=0)
        assert ensure_distinct_weights(g, []) is g

    def test_lexicographic_tuple_shape(self):
        w = lexicographic_weight(5, 9, 2, in_tree=True)
        assert w == (5, 0, 2, 9)
        w2 = lexicographic_weight(5, 9, 2, in_tree=False)
        assert w2 == (5, 1, 2, 9)
        assert w < w2


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=18),
       st.integers(min_value=0, max_value=20),
       st.integers(min_value=0, max_value=10_000))
def test_property_kruskal_is_mst(n, extra, seed):
    g = random_connected_graph(n, extra, seed=seed)
    mst = kruskal_mst(g)
    assert is_mst(g, mst)
    assert prim_mst(g) == mst
