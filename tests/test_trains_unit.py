"""Unit-level behaviour of the train mechanism (Theorem 7.1) observed
through the full verifier protocol on correct instances."""

import pytest

from repro.graphs.generators import path_graph, random_connected_graph
from repro.labels import registers as R
from repro.labels.wellforming import sorted_levels
from repro.sim import Network, SynchronousScheduler
from repro.trains.budgets import compute_budgets
from repro.trains.train import piece_key, valid_piece
from repro.verification import make_network, run_marker
from repro.verification.verifier import MstVerifierProtocol


@pytest.fixture(scope="module")
def running():
    g = random_connected_graph(20, 32, seed=21)
    marker = run_marker(g)
    network = make_network(g, marker)
    protocol = MstVerifierProtocol(synchronous=True)
    sched = SynchronousScheduler(network, protocol)
    # record the broadcast stream at every node
    streams = {v: [] for v in g.nodes()}

    rounds = 600
    sched.initialize()
    for _ in range(rounds):
        sched.run(1)
        for v in g.nodes():
            for prefix in ("tt_", "bt_"):
                buf = network.registers[v].get(prefix + "bbuf")
                if isinstance(buf, tuple) and len(buf) == 2 and \
                        valid_piece(buf[0]):
                    key = (prefix, buf[0], bool(buf[1]))
                    if not streams[v] or streams[v][-1] != key:
                        streams[v].append(key)
    return g, marker, network, streams


class TestPieceHelpers:
    def test_valid_piece(self):
        assert valid_piece((3, 1, 17))
        assert valid_piece((3, 0, None))
        assert not valid_piece((3, 1))
        assert not valid_piece("x")
        assert not valid_piece((True, 1, 2))

    def test_piece_key_orders_by_level_then_root(self):
        assert piece_key((9, 1, 5)) < piece_key((2, 2, 1))
        assert piece_key((2, 1, 5)) < piece_key((9, 1, 1))


class TestRotation:
    def test_no_alarms(self, running):
        _g, _m, network, _s = running
        assert not network.alarms()

    def test_every_node_sees_its_levels_flagged(self, running):
        g, marker, _network, streams = running
        for v in g.nodes():
            levels_seen = {pc[1] for _p, pc, flag in streams[v] if flag}
            jmask = marker.labels[v][R.REG_JMASK]
            needed = set(sorted_levels(jmask))
            assert needed <= levels_seen, (v, needed, levels_seen)

    def test_streams_cycle_in_lex_order(self, running):
        """Within one rotation the (level, root) keys increase."""
        _g, _m, _network, streams = running
        for v, stream in streams.items():
            for prefix in ("tt_", "bt_"):
                keys = [piece_key(pc) for p, pc, _f in stream if p == prefix]
                if len(keys) < 3:
                    continue
                # drop the (possibly partial) first rotation
                boundaries = [i for i in range(1, len(keys))
                              if keys[i] <= keys[i - 1]]
                if len(boundaries) < 2:
                    continue
                # every full rotation between boundaries is increasing
                for b_start, b_end in zip(boundaries, boundaries[1:]):
                    rotation = keys[b_start:b_end]
                    assert rotation == sorted(rotation), \
                        f"non-monotone rotation at node {v}"

    def test_rotation_time_within_budget(self, running):
        """Theorem 7.1: each node sees a full rotation within O(log n)
        synchronous rounds (we ran 600 rounds; every node must have seen
        several rotations of every train with pieces)."""
        g, marker, _network, streams = running
        budgets = compute_budgets(g.n, synchronous=True)
        for v in g.nodes():
            for prefix, count_reg in (("tt_", R.REG_TOP_COUNT),
                                      ("bt_", R.REG_BOT_COUNT)):
                expect = marker.labels[v][count_reg]
                if expect == 0:
                    continue
                total = sum(1 for p, _pc, _f in streams[v] if p == prefix)
                assert total >= 3 * expect, \
                    f"node {v} saw too few {prefix} pieces in 600 rounds"


class TestBudgets:
    def test_budget_monotone_in_n(self):
        b1 = compute_budgets(16, True)
        b2 = compute_budgets(256, True)
        assert b2.cycle > b1.cycle
        assert b2.ask_alarm > b1.ask_alarm

    def test_async_cycle_superlinear_in_log(self):
        bs = compute_budgets(64, True)
        ba = compute_budgets(64, False)
        assert ba.cycle > bs.cycle

    def test_degree_scales_async_ask(self):
        b1 = compute_budgets(64, False, degree=2)
        b2 = compute_budgets(64, False, degree=8)
        assert b2.ask_alarm == 4 * b1.ask_alarm


def test_single_node_network_quiet():
    g = path_graph(1)
    marker = run_marker(g)
    network = make_network(g, marker)
    protocol = MstVerifierProtocol(synchronous=True)
    SynchronousScheduler(network, protocol).run(100)
    assert not network.alarms()
