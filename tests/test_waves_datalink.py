"""Wave&Echo (Section 2.3) and the data-link emulation (Section 2.2)."""

import pytest

from repro.graphs.generators import path_graph, random_connected_graph
from repro.graphs.mst_reference import kruskal_mst
from repro.graphs.spanning import RootedTree
from repro.sim.datalink import run_data_link
from repro.sim.schedulers import RandomDaemon, RoundRobinDaemon
from repro.sim.waves import (count_command, min_command, or_command,
                             run_ttl_count, run_wave_echo, sum_command)


def make_tree(n=20, seed=0):
    g = random_connected_graph(n, n + 10, seed=seed)
    return RootedTree.from_edges(g, kruskal_mst(g), g.nodes()[0])


class TestWaveEcho:
    def test_count(self):
        tree = make_tree()
        res = run_wave_echo(tree, count_command())
        assert res.value == tree.graph.n

    def test_sum(self):
        tree = make_tree(seed=1)
        values = {v: v * 2 + 1 for v in tree.nodes()}
        res = run_wave_echo(tree, sum_command(values))
        assert res.value == sum(values.values())

    def test_or_true_and_false(self):
        tree = make_tree(seed=2)
        flags = {v: False for v in tree.nodes()}
        assert run_wave_echo(tree, or_command(flags)).value is False
        flags[tree.nodes()[7]] = True
        assert run_wave_echo(tree, or_command(flags)).value is True

    def test_min(self):
        tree = make_tree(seed=3)
        values = {v: 100 - v for v in tree.nodes()}
        res = run_wave_echo(tree, min_command(values))
        assert res.value == min(values.values())

    def test_round_cost_is_two_heights(self):
        g = path_graph(12, seed=4)
        tree = RootedTree.from_edges(g, set(g.edge_set()), 0)
        res = run_wave_echo(tree, count_command())
        assert res.rounds <= 2 * tree.height() + 4
        assert res.rounds >= tree.height()

    def test_single_node(self):
        g = path_graph(1)
        tree = RootedTree(g, 0, {0: None})
        assert run_wave_echo(tree, count_command()).value == 1


class TestTtlWave:
    def test_full_count_when_ttl_exceeds_height(self):
        tree = make_tree(seed=5)
        res = run_ttl_count(tree, ttl=tree.height() + 1)
        assert res.value == tree.graph.n

    def test_ttl_truncates_at_depth(self):
        g = path_graph(10, seed=6)
        tree = RootedTree.from_edges(g, set(g.edge_set()), 0)
        res = run_ttl_count(tree, ttl=3)
        assert res.value == 4  # the root plus three more hops

    def test_ttl_zero_counts_root_only(self):
        tree = make_tree(seed=7)
        assert run_ttl_count(tree, ttl=0).value == 1

    def test_count_size_decision(self):
        """SYNC_MST's activity rule: |F| <= 2^(i+1)-1 iff the TTL count
        returns the exact size."""
        tree = make_tree(n=13, seed=8)
        for phase in range(5):
            bound = 2 ** (phase + 1) - 1
            counted = run_ttl_count(tree, ttl=bound).value
            if counted <= bound:
                assert counted == tree.graph.n or counted == bound


class TestDataLink:
    def test_in_order_exactly_once(self):
        g = path_graph(2, seed=9)
        run = run_data_link(g, 0, 1, ["a", "b", "c", "d"],
                            daemon=RoundRobinDaemon())
        assert run.delivered == ["a", "b", "c", "d"]

    def test_random_daemon_delivery(self):
        g = path_graph(3, seed=10)
        msgs = list(range(10))
        run = run_data_link(g, 1, 2, msgs, daemon=RandomDaemon(seed=3))
        assert run.delivered == msgs

    @pytest.mark.parametrize("tog,ack", [(1, 0), (2, 1), (0, 2), (2, 2)])
    def test_self_stabilizes_from_corrupt_toggles(self, tog, ack):
        """At most one stale delivery, then the exact stream."""
        g = path_graph(2, seed=11)
        msgs = ["m1", "m2", "m3"]
        run = run_data_link(g, 0, 1, msgs, daemon=RoundRobinDaemon(),
                            corrupt_toggles=(tog, ack))
        assert run.delivered[-3:] == msgs
        assert len(run.delivered) <= len(msgs) + 1

    def test_requires_adjacency(self):
        g = path_graph(3, seed=12)
        with pytest.raises(ValueError):
            run_data_link(g, 0, 2, ["x"])
