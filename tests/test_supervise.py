"""Supervised execution tests: the chaos matrix (crash/hang/error cells
all reach structured terminal statuses, nothing silently missing),
retry/quarantine budgets, per-cell timeout scaling, and interrupt
semantics — under both ``fork`` and ``spawn`` start methods."""

import multiprocessing

import pytest

from repro.engine import (CampaignInterrupted, CampaignRunner,
                          ChaosPolicy, ScenarioSpec, SuperviseConfig,
                          axis, size_hint)
from repro.engine.scenarios import (STATUS_CRASHED, STATUS_ERROR,
                                    STATUS_OK, STATUS_QUARANTINED,
                                    STATUS_TIMEOUT, TERMINAL_STATUSES)

START_METHODS = ["fork", "spawn"] if "fork" in \
    multiprocessing.get_all_start_methods() else ["spawn"]


def tiny_specs(count=6, seed=0):
    """Distinct-key, sub-100ms cells: path completeness checks."""
    return [ScenarioSpec(topology=axis("path", n=4 + i),
                         completeness_rounds=8, seed=seed)
            for i in range(count)]


def run_chaos(specs, chaos, *, workers=2, mp_context="fork", **knobs):
    knobs.setdefault("backoff", 0.05)
    config = SuperviseConfig(chaos=chaos, **knobs)
    runner = CampaignRunner(workers=workers, mp_context=mp_context,
                            supervise=config)
    return runner.run(specs)


class TestChaosPolicy:
    def test_pick_is_deterministic_and_disjoint(self):
        specs = tiny_specs(6)
        a = ChaosPolicy.pick(specs, crash=2, hang=1, error=2)
        b = ChaosPolicy.pick(list(reversed(specs)), crash=2, hang=1,
                             error=2)
        assert a == b
        assert len(a.crash_keys) == 2 and len(a.hang_keys) == 1
        assert len(a.error_keys) == 2
        assert not (a.crash_keys & a.hang_keys)
        assert not (a.crash_keys & a.error_keys)
        assert not (a.hang_keys & a.error_keys)

    def test_pick_never_overruns_the_campaign(self):
        specs = tiny_specs(2)
        p = ChaosPolicy.pick(specs, crash=5, hang=5, error=5)
        assert len(p.crash_keys | p.hang_keys | p.error_keys) == 2

    def test_plan_respects_fail_attempts(self):
        spec = tiny_specs(1)[0]
        p = ChaosPolicy(crash_keys=frozenset({spec.key}),
                        fail_attempts=2)
        assert p.plan(spec, 1) == "crash"
        assert p.plan(spec, 2) == "crash"
        assert p.plan(spec, 3) is None
        assert p.plan(tiny_specs(2)[1], 1) is None


class TestSuperviseConfig:
    def test_timeout_scales_with_topology_size(self):
        config = SuperviseConfig(timeout=10.0, timeout_scale=100.0)
        small = ScenarioSpec(topology=axis("path", n=50))
        large = ScenarioSpec(topology=axis("path", n=400))
        assert config.timeout_for(small) == 10.0      # under the scale
        assert config.timeout_for(large) == 40.0      # 4x the scale
        assert SuperviseConfig().timeout_for(small) is None

    def test_size_hint_families(self):
        assert size_hint(ScenarioSpec(topology=axis("path", n=7))) == 7
        assert size_hint(ScenarioSpec(
            topology=axis("grid", rows=3, cols=5))) == 15
        # unknown family: a conservative default, never a crash
        assert size_hint(ScenarioSpec(topology=axis("mystery"))) > 0

    def test_budgets_by_kind(self):
        config = SuperviseConfig(max_attempts=3, timeout_attempts=2)
        assert config.budget_for(STATUS_CRASHED) == 3
        assert config.budget_for(STATUS_TIMEOUT) == 2


class TestChaosMatrix:
    """The acceptance matrix: every cell ends in a terminal status."""

    def test_crash_is_retried_to_ok(self):
        specs = tiny_specs(6)
        chaos = ChaosPolicy.pick(specs, crash=2, fail_attempts=1)
        result = run_chaos(specs, chaos, max_attempts=2)
        assert len(result) == len(specs)
        assert all(r.status == STATUS_OK for r in result)
        retried = [r for r in result if r.spec.key in chaos.crash_keys]
        assert len(retried) == 2
        assert all(r.attempts == 2 for r in retried)
        assert all(r.attempts == 1 for r in result
                   if r.spec.key not in chaos.crash_keys)

    def test_persistent_crash_is_quarantined(self):
        specs = tiny_specs(4)
        chaos = ChaosPolicy.pick(specs, crash=1, fail_attempts=99)
        result = run_chaos(specs, chaos, max_attempts=2)
        bad = [r for r in result if r.spec.key in chaos.crash_keys]
        assert len(bad) == 1 and bad[0].status == STATUS_QUARANTINED
        assert bad[0].error_type == STATUS_CRASHED
        assert bad[0].attempts == 2
        assert "quarantined" in bad[0].error
        assert all(r.status == STATUS_OK for r in result
                   if r.spec.key not in chaos.crash_keys)

    def test_single_attempt_crash_keeps_raw_status(self):
        specs = tiny_specs(3)
        chaos = ChaosPolicy.pick(specs, crash=1, fail_attempts=99)
        result = run_chaos(specs, chaos, max_attempts=1)
        bad = [r for r in result if r.spec.key in chaos.crash_keys]
        assert bad[0].status == STATUS_CRASHED
        assert bad[0].violation == STATUS_CRASHED

    def test_hang_is_terminated_as_timeout(self):
        specs = tiny_specs(3)
        chaos = ChaosPolicy.pick(specs, hang=1, fail_attempts=99,
                                 hang_seconds=60.0)
        result = run_chaos(specs, chaos, timeout=1.0,
                           timeout_attempts=1)
        hung = [r for r in result if r.spec.key in chaos.hang_keys]
        assert hung[0].status == STATUS_TIMEOUT
        assert "timeout" in hung[0].error
        assert all(r.status == STATUS_OK for r in result
                   if r.spec.key not in chaos.hang_keys)

    def test_error_cell_is_terminal_and_never_retried(self):
        specs = tiny_specs(3)
        chaos = ChaosPolicy.pick(specs, error=1, fail_attempts=99)
        result = run_chaos(specs, chaos, max_attempts=3)
        bad = [r for r in result if r.spec.key in chaos.error_keys]
        assert bad[0].status == STATUS_ERROR
        assert bad[0].error_type == "ChaosError"
        assert bad[0].attempts == 1
        assert bad[0].error_trace

    def test_full_matrix_nothing_missing(self):
        specs = tiny_specs(8)
        chaos = ChaosPolicy.pick(specs, crash=2, hang=1, error=1,
                                 fail_attempts=1, hang_seconds=60.0)
        result = run_chaos(specs, chaos, timeout=2.0, max_attempts=2,
                           timeout_attempts=2)
        # every cell is present, in spec order, with a terminal status
        assert [r.spec.key for r in result] == [s.key for s in specs]
        assert all(r.status in TERMINAL_STATUSES for r in result)
        # fail_attempts=1 inside the budgets: everything retried to ok
        # except the error cell (deterministic, never retried)
        for r in result:
            if r.spec.key in chaos.error_keys:
                assert r.status == STATUS_ERROR
            else:
                assert r.status == STATUS_OK, (r.spec.key, r.error)

    @pytest.mark.parametrize("method", START_METHODS)
    def test_chaos_matrix_under_both_start_methods(self, method):
        specs = tiny_specs(3)
        chaos = ChaosPolicy.pick(specs, crash=1, fail_attempts=1)
        result = run_chaos(specs, chaos, mp_context=method,
                           max_attempts=2)
        assert all(r.status == STATUS_OK for r in result)
        assert sum(r.attempts for r in result) == len(specs) + 1


class TestInterrupt:
    def test_keyboard_interrupt_carries_partial_results(self):
        specs = tiny_specs(6)

        def progress(done, total, result):
            if done >= 2:
                raise KeyboardInterrupt

        runner = CampaignRunner(workers=2)
        with pytest.raises(CampaignInterrupted) as info:
            runner.run(specs, progress=progress)
        exc = info.value
        assert exc.total == len(specs)
        assert 2 <= len(exc.results) < len(specs)
        assert all(r.status in TERMINAL_STATUSES for r in exc.results)

    def test_interrupt_is_a_keyboard_interrupt(self):
        # existing KeyboardInterrupt handlers must keep catching it
        assert issubclass(CampaignInterrupted, KeyboardInterrupt)
