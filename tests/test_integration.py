"""End-to-end integration: the full pipeline across graph families and
both schedulers, plus cross-module consistency checks."""

import pytest

from repro.graphs import kruskal_mst
from repro.graphs.generators import (bounded_degree_graph, caterpillar_graph,
                                     grid_graph, random_connected_graph,
                                     random_geometric_graph, ring_graph)
from repro.graphs.weights import with_verification_weights
from repro.sim import PermutationDaemon
from repro.verification import (labels_for_claimed_tree, run_completeness,
                                run_detection, run_marker,
                                run_reject_instance, swap_one_mst_edge)

FAMILIES = [
    ("ring", lambda: ring_graph(18, seed=1)),
    ("grid", lambda: grid_graph(4, 5, seed=2)),
    ("caterpillar", lambda: caterpillar_graph(5, 2, seed=3)),
    ("geometric", lambda: random_geometric_graph(18, 0.35, seed=4)),
    ("bounded-degree", lambda: bounded_degree_graph(20, 4, seed=5)),
]


@pytest.mark.parametrize("name,make", FAMILIES)
def test_full_pipeline_per_family(name, make):
    """marker -> silent verification -> fault -> detection, per family."""
    g = make()
    marker = run_marker(g)
    assert marker.tree.edge_set() == kruskal_mst(g)
    res = run_completeness(g, rounds=500, synchronous=True, marker=marker)
    assert not res.detected, (name, res.alarms)

    def inject(net, inj):
        inj.corrupt_random_nodes(1, fraction=0.5)

    det = run_detection(g, inject, synchronous=True, marker=marker,
                        max_rounds=8000, seed=7)
    assert det.detected, name


@pytest.mark.parametrize("name,make", FAMILIES[:3])
def test_non_mst_rejected_per_family(name, make):
    g = make()
    wrong = swap_one_mst_edge(g, kruskal_mst(g))
    if wrong is None:
        pytest.skip("graph is a tree")
    adv = labels_for_claimed_tree(g, wrong)
    res = run_reject_instance(g, adv.labels, synchronous=True,
                              max_rounds=8000)
    assert res.detected, name


def test_pipeline_with_lexicographic_weights():
    """The omega' re-weighting (tuple weights) flows through the whole
    pipeline: construction, labels, verification."""
    g = random_connected_graph(14, 20, seed=8, distinct=False)
    if g.has_distinct_weights():
        pytest.skip("instance happened to be distinct")
    mst_guess = kruskal_mst(g)
    g2 = with_verification_weights(g, mst_guess)
    assert g2.has_distinct_weights()
    marker = run_marker(g2)
    res = run_completeness(g2, rounds=400, synchronous=True, marker=marker)
    assert not res.detected, res.alarms


def test_async_pipeline_end_to_end():
    g = random_connected_graph(12, 18, seed=9)

    def inject(net, inj):
        inj.corrupt_random_nodes(1, fraction=0.5)

    det = run_detection(g, inject, synchronous=False,
                        daemon=PermutationDaemon(seed=2),
                        max_rounds=40_000, seed=11)
    assert det.detected


def test_marker_is_deterministic():
    g = random_connected_graph(16, 24, seed=10)
    a = run_marker(g)
    b = run_marker(g)
    assert a.labels == b.labels
    assert a.construction_rounds == b.construction_rounds


def test_detection_result_reports_memory():
    g = random_connected_graph(12, 18, seed=12)
    res = run_completeness(g, rounds=30, synchronous=True)
    assert res.max_memory_bits > 0
