"""Unit tests for spanning structures (components and rooted trees)."""

import pytest

from repro.graphs import (Components, GraphError, RootedTree, WeightedGraph,
                          edge_key, is_spanning_tree)
from repro.graphs.generators import (grid_graph, path_graph,
                                     random_connected_graph)
from repro.graphs.mst_reference import kruskal_mst


def sample_tree():
    g = WeightedGraph()
    for u, v, w in [(1, 2, 1), (1, 3, 2), (3, 4, 3), (3, 5, 4), (2, 4, 9)]:
        g.add_edge(u, v, w)
    parent = {1: None, 2: 1, 3: 1, 4: 3, 5: 3}
    return g, RootedTree(g, 1, parent)


class TestRootedTree:
    def test_depths(self):
        _g, t = sample_tree()
        assert t.depth == {1: 0, 2: 1, 3: 1, 4: 2, 5: 2}

    def test_children_in_port_order(self):
        _g, t = sample_tree()
        assert t.children[1] == [2, 3]
        assert t.children[3] == [4, 5]

    def test_height_and_sizes(self):
        _g, t = sample_tree()
        assert t.height() == 2
        assert t.subtree_sizes() == {1: 5, 2: 1, 3: 3, 4: 1, 5: 1}

    def test_dfs_orders(self):
        _g, t = sample_tree()
        assert t.dfs_preorder() == [1, 2, 3, 4, 5]
        post = t.dfs_postorder()
        assert post.index(4) < post.index(3)
        assert post[-1] == 1
        assert sorted(post) == [1, 2, 3, 4, 5]

    def test_tree_path(self):
        _g, t = sample_tree()
        assert t.tree_path(2, 5) == [2, 1, 3, 5]
        assert t.tree_path(4, 4) == [4]

    def test_tree_path_max_weight(self):
        _g, t = sample_tree()
        assert t.tree_path_max_weight(2, 5) == 4

    def test_is_ancestor(self):
        _g, t = sample_tree()
        assert t.is_ancestor(1, 5)
        assert t.is_ancestor(3, 4)
        assert not t.is_ancestor(2, 4)

    def test_tree_neighbors(self):
        _g, t = sample_tree()
        assert t.tree_neighbors(3) == [1, 4, 5]
        assert t.tree_neighbors(1) == [2, 3]

    def test_edge_set(self):
        _g, t = sample_tree()
        assert t.edge_set() == {(1, 2), (1, 3), (3, 4), (3, 5)}

    def test_invalid_parent_rejected(self):
        g, _ = sample_tree()
        with pytest.raises(GraphError):
            RootedTree(g, 1, {1: None, 2: 5, 3: 1, 4: 3, 5: 3})  # (2,5) no edge

    def test_cycle_rejected(self):
        g = WeightedGraph()
        g.add_edge(1, 2, 1)
        g.add_edge(2, 3, 2)
        g.add_edge(3, 1, 3)
        with pytest.raises(GraphError):
            RootedTree(g, 1, {1: None, 2: 3, 3: 2})

    def test_from_edges(self):
        g, t = sample_tree()
        rebuilt = RootedTree.from_edges(g, t.edge_set(), 3)
        assert rebuilt.root == 3
        assert rebuilt.depth[1] == 1
        assert rebuilt.edge_set() == t.edge_set()


class TestComponents:
    def test_roundtrip(self):
        g, t = sample_tree()
        comp = t.components()
        assert comp.parent_of(4) == 3
        assert comp.parent_of(1) is None
        assert comp.induced_edges() == t.edge_set()
        assert comp.roots() == [1]

    def test_one_sided_pointer_includes_edge(self):
        g = WeightedGraph()
        g.add_edge(1, 2, 1)
        comp = Components.from_parent_map(g, {1: None, 2: 1})
        assert comp.induced_edges() == {(1, 2)}


class TestIsSpanningTree:
    def test_accepts_mst(self):
        g = random_connected_graph(20, 30, seed=4)
        assert is_spanning_tree(g, kruskal_mst(g))

    def test_rejects_wrong_count(self):
        g = path_graph(4)
        assert not is_spanning_tree(g, {(0, 1)})

    def test_rejects_disconnected(self):
        g = grid_graph(2, 3)   # nodes 0,1,2 / 3,4,5
        good = {edge_key(0, 1), edge_key(0, 3), edge_key(1, 2),
                edge_key(2, 5), edge_key(1, 4)}
        assert is_spanning_tree(g, good)
        # 5 edges but {2,5} is cut off and 0-1-4-3 closes a cycle
        bad = {edge_key(0, 1), edge_key(1, 4), edge_key(3, 4),
               edge_key(0, 3), edge_key(2, 5)}
        assert not is_spanning_tree(g, bad)

    def test_rejects_non_edges(self):
        g = path_graph(4)
        assert not is_spanning_tree(g, {(0, 1), (1, 2), (0, 3)})
