"""Detection-time guarantees: measured times respect the watchdog
budgets (the quantitative content of Theorem 8.5 at simulation scale)."""

import pytest

from repro.graphs.generators import random_connected_graph
from repro.labels import registers as R
from repro.trains.budgets import compute_budgets, node_budgets
from repro.verification import run_detection
from repro.verification.detection import make_network
from repro.verification.verifier import MstVerifierProtocol


def lie_about_piece(net, inj):
    for v in net.graph.nodes():
        pieces = net.registers[v].get(R.REG_PIECES_TOP) or ()
        if pieces:
            z, lvl, w = pieces[0]
            inj.corrupt_register(
                v, R.REG_PIECES_TOP,
                ((z, lvl, (w or 0) + 1),) + tuple(pieces[1:]))
            return


class TestBudgets:
    def test_worst_case_budgets_scale_logarithmically(self):
        small = compute_budgets(64, True)
        large = compute_budgets(64 ** 2, True)
        # doubling log n should roughly double the cycle budget
        assert large.cycle < 3 * small.cycle

    def test_node_budgets_capped_by_worst_case(self):
        from repro.sim.network import NodeContext
        g = random_connected_graph(32, 50, seed=41)
        net = make_network(g)
        worst = compute_budgets(g.n, True)
        for v in g.nodes():
            ctx = NodeContext(net, v, net.registers)
            b = node_budgets(ctx, True)
            assert b.cycle <= 4 * worst.cycle
            assert b.node_alarm >= b.root_reset

    def test_corrupt_claims_cannot_stretch_budgets(self):
        """A node claiming a huge part bound still gets a capped budget."""
        from repro.sim.network import NodeContext
        g = random_connected_graph(16, 24, seed=42)
        net = make_network(g)
        v = g.nodes()[0]
        net.registers[v][R.REG_TOP_BOUND] = 10 ** 9
        net.registers[v][R.REG_TOP_COUNT] = 10 ** 9
        ctx = NodeContext(net, v, net.registers)
        b = node_budgets(ctx, True)
        worst = compute_budgets(g.n, True)
        assert b.cycle <= 4 * worst.cycle


class TestDetectionWithinBudget:
    @pytest.mark.parametrize("n", [24, 48])
    def test_piece_lie_detected_within_ask_budget(self, n):
        g = random_connected_graph(n, 2 * n, seed=43)
        res = run_detection(g, lie_about_piece, synchronous=True,
                            max_rounds=10 ** 6, static_every=2, seed=1)
        assert res.detected
        worst = compute_budgets(g.n, True, degree=g.max_degree())
        # the watchdog-based worst case bounds any detection
        assert res.rounds_to_detection <= 2 * worst.ask_alarm

    def test_static_fault_detected_within_static_period(self):
        g = random_connected_graph(24, 40, seed=44)

        def inject(net, inj):
            inj.corrupt_register(g.nodes()[5], R.REG_DIST, 99)

        res = run_detection(g, inject, synchronous=True, max_rounds=100,
                            static_every=1, seed=2)
        assert res.detected
        assert res.rounds_to_detection <= 2

    def test_sublinear_detection_shape(self):
        """Doubling n twice must not double detection time twice (the
        log^2 n vs n separation at small scale)."""
        times = {}
        for n in (32, 128):
            g = random_connected_graph(n, 2 * n, seed=45)
            res = run_detection(g, lie_about_piece, synchronous=True,
                                max_rounds=10 ** 6, static_every=4, seed=3)
            assert res.detected
            times[n] = max(1, res.rounds_to_detection)
        assert times[128] < 4 * times[32] + 64
