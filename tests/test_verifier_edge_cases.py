"""Edge cases of the full verifier: extreme topologies, tuple weights,
want-mode holds, and epoch resets under the asynchronous scheduler."""

import pytest

from repro.graphs import WeightedGraph, kruskal_mst
from repro.graphs.generators import (complete_graph, path_graph, star_graph)
from repro.graphs.weights import with_verification_weights
from repro.sim import (FaultInjector, Network, PermutationDaemon,
                       SynchronousScheduler, first_alarm)
from repro.sim.schedulers import AsynchronousScheduler
from repro.trains.comparison import MODE_WANT, REG_WANT
from repro.verification import make_network, run_completeness, run_detection
from repro.verification.verifier import MstVerifierProtocol


class TestExtremeTopologies:
    def test_two_nodes(self):
        g = WeightedGraph()
        g.add_edge(1, 2, 5)
        res = run_completeness(g, rounds=300, synchronous=True)
        assert not res.detected, res.alarms

    def test_star_high_degree(self):
        g = star_graph(16, seed=1)
        res = run_completeness(g, rounds=500, synchronous=True)
        assert not res.detected, res.alarms

    def test_complete_graph(self):
        g = complete_graph(10, seed=2)
        res = run_completeness(g, rounds=500, synchronous=True)
        assert not res.detected, res.alarms

    def test_long_path(self):
        g = path_graph(40, seed=3)
        res = run_completeness(g, rounds=900, synchronous=True,
                               static_every=2)
        assert not res.detected, res.alarms

    def test_detection_on_complete_graph(self):
        g = complete_graph(10, seed=4)

        def inject(net, inj):
            inj.corrupt_random_nodes(1, fraction=0.6)

        res = run_detection(g, inject, synchronous=True, max_rounds=6000,
                            seed=5)
        assert res.detected


class TestTupleWeights:
    def test_verifier_handles_lexicographic_weights(self):
        g = WeightedGraph()
        for u, v, w in [(1, 2, 5), (2, 3, 5), (1, 3, 5), (3, 4, 2),
                        (2, 4, 7)]:
            g.add_edge(u, v, w)
        tree = kruskal_mst(with_verification_weights(g, []))
        g2 = with_verification_weights(g, tree)
        res = run_completeness(g2, rounds=400, synchronous=True)
        assert not res.detected, res.alarms

    def test_tuple_weight_lie_detected(self):
        g = WeightedGraph()
        for u, v, w in [(1, 2, 5), (2, 3, 5), (1, 3, 5), (3, 4, 2)]:
            g.add_edge(u, v, w)
        tree = kruskal_mst(with_verification_weights(g, []))
        g2 = with_verification_weights(g, tree)

        def inject(net, inj):
            for v in net.graph.nodes():
                pieces = net.registers[v].get("pc_bot") or ()
                if pieces and pieces[0][2] is not None:
                    z, lvl, w = pieces[0]
                    inj.corrupt_register(
                        v, "pc_bot",
                        ((z, lvl, tuple(w[:-1]) + (w[-1] + 1,)),)
                        + tuple(pieces[1:]))
                    return
            inj.corrupt_random_nodes(1)

        res = run_detection(g2, inject, synchronous=True, max_rounds=6000,
                            seed=6)
        assert res.detected


class TestWantModeMechanics:
    def test_want_register_is_used(self):
        """Under the asynchronous Want mode some node files a request at
        some point (the handshake actually engages)."""
        from repro.graphs.generators import random_connected_graph
        g = random_connected_graph(14, 24, seed=7)
        network = make_network(g)
        protocol = MstVerifierProtocol(synchronous=False,
                                       comparison_mode=MODE_WANT)
        sched = AsynchronousScheduler(network, protocol,
                                      PermutationDaemon(seed=1))
        sched.initialize()
        saw_want = False
        for _ in range(600):
            sched.run(1)
            if any(network.registers[v].get(REG_WANT) is not None
                   for v in g.nodes()):
                saw_want = True
                break
        assert saw_want
        assert not network.alarms()

    def test_epoch_reset_heals_async_wedge(self):
        """Wedging a part's convergecast pointers under the asynchronous
        scheduler recovers via the root's epoch reset, silently."""
        from repro.graphs.generators import random_connected_graph
        g = random_connected_graph(12, 18, seed=8)
        network = make_network(g)
        protocol = MstVerifierProtocol(synchronous=False)
        sched = AsynchronousScheduler(network, protocol,
                                      PermutationDaemon(seed=2))
        sched.run(250)
        assert not network.alarms()
        for v in g.nodes()[:4]:
            regs = network.registers[v]
            for name in ("tt_src", "tt_cyc", "tt_done", "tt_act", "tt_tak",
                         "bt_src", "bt_cyc"):
                if name in regs:
                    regs[name] = 9
        sched.run(900)
        assert not network.alarms(), network.alarms()


class TestAlarmLatching:
    def test_alarm_persists(self):
        from repro.graphs.generators import random_connected_graph
        g = random_connected_graph(12, 18, seed=9)
        network = make_network(g)
        protocol = MstVerifierProtocol(synchronous=True)
        sched = SynchronousScheduler(network, protocol)
        sched.run(200)
        FaultInjector(network, seed=3).corrupt_register(
            g.nodes()[2], "dist", 99)
        sched.run(3000, stop_when=first_alarm)
        assert network.alarms()
        first = dict(network.alarms())
        sched.run(50)
        for v, reason in first.items():
            assert network.alarms().get(v) == reason
