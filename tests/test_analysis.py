"""Shape-fitting helpers used by the benchmark reports."""

import math

import pytest

from repro.analysis import (fit_polylog, fit_power_law, format_table,
                            growth_ratio, is_sublinear)


class TestPowerLaw:
    def test_exact_linear(self):
        xs = [10, 20, 40, 80]
        ys = [30, 60, 120, 240]
        fit = fit_power_law(xs, ys)
        assert abs(fit.b - 1.0) < 1e-9
        assert abs(fit.a - 3.0) < 1e-9
        assert fit.r2 > 0.999

    def test_exact_quadratic(self):
        xs = [2, 4, 8, 16]
        ys = [x * x for x in xs]
        fit = fit_power_law(xs, ys)
        assert abs(fit.b - 2.0) < 1e-9

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])


class TestPolylog:
    def test_log_squared_data(self):
        xs = [2 ** k for k in range(4, 12)]
        ys = [math.log2(x) ** 2 for x in xs]
        fit = fit_polylog(xs, ys)
        assert abs(fit.b - 2.0) < 0.01

    def test_linear_data_has_superlog_exponent(self):
        xs = [2 ** k for k in range(4, 12)]
        ys = xs
        fit = fit_polylog(xs, ys)
        assert fit.b > 3.0  # linear growth looks like a huge log power


class TestGrowth:
    def test_growth_ratio_linear(self):
        assert abs(growth_ratio([10, 100], [5, 50]) - 1.0) < 1e-9

    def test_is_sublinear(self):
        xs = [16, 256]
        assert is_sublinear(xs, [4, 8])          # log-ish
        assert not is_sublinear(xs, [16, 256])   # linear

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            growth_ratio([0, 1], [1, 2])


class TestFormatTable:
    def test_renders_rows(self):
        text = format_table(["name", "value"],
                            [["alpha", 1.5], ["beta", 12345.0]])
        assert "alpha" in text and "12,345" in text
        assert text.splitlines()[1].startswith("-")
