"""Unit tests for the comparison component's internals and the core
facade."""

import pytest

from repro.graphs.generators import random_connected_graph
from repro.labels import registers as R
from repro.sim import Network, SynchronousScheduler, first_alarm
from repro.sim.network import NodeContext
from repro.trains.comparison import (MODE_SYNC_WINDOW, REG_ASK,
                                     ComparisonComponent)
from repro.trains.train import TrainComponent
from repro.verification import make_network, run_marker
from repro.verification.verifier import MstVerifierProtocol


@pytest.fixture(scope="module")
def setup():
    g = random_connected_graph(18, 30, seed=27)
    marker = run_marker(g)
    net = make_network(g, marker)
    protocol = MstVerifierProtocol(synchronous=True)
    return g, marker, net, protocol


def ctx_for(net, v):
    return NodeContext(net, v, net.registers)


class TestCandidateNeighbor:
    def test_up_points_at_parent(self, setup):
        g, marker, net, protocol = setup
        comp = protocol.comparison
        for v in g.nodes():
            endp = marker.labels[v][R.REG_ENDP]
            pid = marker.labels[v][R.REG_PARENT_ID]
            for j, c in enumerate(endp):
                got = comp._candidate_neighbor(ctx_for(net, v), j)
                if c == "u":
                    assert got == pid
                elif c == "n" or c == "*":
                    assert got is None

    def test_down_points_at_marked_child(self, setup):
        g, marker, net, protocol = setup
        comp = protocol.comparison
        found = 0
        for v in g.nodes():
            endp = marker.labels[v][R.REG_ENDP]
            for j, c in enumerate(endp):
                if c != "d":
                    continue
                u0 = comp._candidate_neighbor(ctx_for(net, v), j)
                assert u0 is not None
                assert marker.labels[u0][R.REG_PARENTS][j] == "1"
                found += 1
        assert found > 0

    def test_candidate_weight_is_fragment_minimum(self, setup):
        g, marker, net, protocol = setup
        comp = protocol.comparison
        for frag in marker.hierarchy.fragments:
            if frag.candidate_edge is None:
                continue
            v = frag.candidate_edge[0]
            u0 = comp._candidate_neighbor(ctx_for(net, v), frag.level)
            assert u0 == frag.candidate_edge[1]
            assert g.weight(v, u0) == frag.candidate_weight


class TestOnAcquire:
    def test_honest_piece_passes(self, setup):
        g, marker, net, protocol = setup
        comp = protocol.comparison
        for frag in marker.hierarchy.fragments:
            if frag.candidate_edge is None:
                continue
            v = frag.candidate_edge[0]
            piece = (frag.root, frag.level, frag.candidate_weight)
            assert comp._on_acquire_checks(ctx_for(net, v), piece) == []

    def test_wrong_weight_caught(self, setup):
        g, marker, net, protocol = setup
        comp = protocol.comparison
        frag = next(f for f in marker.hierarchy.fragments
                    if f.candidate_edge is not None)
        v = frag.candidate_edge[0]
        piece = (frag.root, frag.level, frag.candidate_weight + 1)
        assert comp._on_acquire_checks(ctx_for(net, v), piece)

    def test_wrong_root_caught_at_fragment_root(self, setup):
        g, marker, net, protocol = setup
        comp = protocol.comparison
        frag = next(f for f in marker.hierarchy.fragments
                    if f.candidate_edge is not None)
        piece = (frag.root + 999, frag.level, frag.candidate_weight)
        reasons = comp._on_acquire_checks(ctx_for(net, frag.root), piece)
        assert any("root id" in r for r in reasons)


class TestCoreFacade:
    def test_facade_roundtrip(self):
        from repro.core import (construct_mst, label_instance,
                                self_stabilizing_mst, verify)
        from repro.graphs import kruskal_mst

        g = random_connected_graph(14, 22, seed=28)
        assert construct_mst(g).tree.edge_set() == kruskal_mst(g)
        marker = label_instance(g)
        res = verify(g, marker.labels, rounds=300)
        assert not res.detected
        stab = self_stabilizing_mst(g)
        assert stab.correct
