"""String computation (Section 5.2/5.3): structural properties on random
hierarchies, beyond the exact Table-2 anchor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.generators import random_connected_graph
from repro.labels.strings import (ENDP_DOWN, ENDP_NONE, ENDP_STAR, ENDP_UP,
                                  compute_node_strings, levels_mask)
from repro.mst import run_sync_mst


@pytest.fixture(scope="module")
def built():
    g = random_connected_graph(30, 55, seed=23)
    result = run_sync_mst(g)
    return g, result.hierarchy, compute_node_strings(result.hierarchy)


class TestStringShapes:
    def test_all_strings_same_width(self, built):
        _g, h, strings = built
        width = h.height + 1
        for s in strings.values():
            assert len(s.roots) == width
            assert len(s.endp) == width
            assert len(s.parents) == width
            assert len(s.orendp) == width

    def test_roots_matches_membership(self, built):
        _g, h, strings = built
        for v, s in strings.items():
            for j, c in enumerate(s.roots):
                frag = h.fragment_at_level(v, j)
                if frag is None:
                    assert c == "*"
                elif frag.root == v:
                    assert c == "1"
                else:
                    assert c == "0"

    def test_endp_star_iff_roots_star(self, built):
        _g, _h, strings = built
        for s in strings.values():
            for cr, ce in zip(s.roots, s.endp):
                assert (cr == "*") == (ce == ENDP_STAR)

    def test_every_fragment_has_one_endpoint(self, built):
        """EPS1 at the source: exactly one up/down per non-tree fragment."""
        _g, h, strings = built
        for frag in h.fragments:
            endpoints = [
                v for v in frag.nodes
                if strings[v].endp[frag.level] in (ENDP_UP, ENDP_DOWN)
            ]
            if frag.candidate_edge is None:
                assert endpoints == []
            else:
                assert endpoints == [frag.candidate_edge[0]]

    def test_parents_marks_down_children(self, built):
        _g, h, strings = built
        tree = h.tree
        for v, s in strings.items():
            for j, c in enumerate(s.parents):
                if c == "1":
                    p = tree.parent[v]
                    assert p is not None
                    assert strings[p].endp[j] == ENDP_DOWN

    def test_levels_mask_roundtrip(self, built):
        _g, h, strings = built
        for v, s in strings.items():
            mask = levels_mask(s.roots)
            assert mask == sum(1 << j for j, c in enumerate(s.roots)
                               if c != "*")
            assert bin(mask).count("1") == len(h.fragments_of(v))

    def test_orendp_root_counts(self, built):
        _g, h, strings = built
        ell = h.height
        for frag in h.fragments:
            root_count = strings[frag.root].orendp[frag.level]
            if frag.level == ell:
                assert root_count == 0
            else:
                assert root_count == 1


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=20),
       st.integers(min_value=0, max_value=24),
       st.integers(min_value=0, max_value=5000))
def test_property_marker_strings_pass_static_checks(n, extra, seed):
    """Any SYNC_MST hierarchy's strings satisfy all RS/EPS conditions."""
    from repro.labels.views import all_views
    from repro.labels.wellforming import static_check
    from repro.verification import run_marker

    g = random_connected_graph(n, extra, seed=seed)
    marker = run_marker(g)
    for view in all_views(g, marker.labels):
        assert static_check(view) == [], (n, extra, seed, view.node)
