"""The adversarial-labeling machinery used by the soundness experiments."""

import pytest

from repro.graphs import is_mst, kruskal_mst
from repro.graphs.generators import complete_graph, random_connected_graph
from repro.labels.views import all_views
from repro.labels.wellforming import static_check
from repro.verification import (labels_for_claimed_tree, swap_one_mst_edge,
                                tree_only_subgraph)


class TestSwap:
    @pytest.mark.parametrize("seed", range(4))
    def test_swap_produces_spanning_non_mst(self, seed):
        from repro.graphs.spanning import is_spanning_tree
        g = random_connected_graph(16, 26, seed=seed)
        mst = kruskal_mst(g)
        wrong = swap_one_mst_edge(g, mst)
        assert wrong is not None
        assert is_spanning_tree(g, wrong)
        assert not is_mst(g, wrong)
        assert len(wrong ^ mst) == 2

    def test_swap_on_tree_returns_none(self):
        from repro.graphs.generators import random_tree
        g = random_tree(10, seed=1)
        assert swap_one_mst_edge(g, kruskal_mst(g)) is None


class TestTreeOnlySubgraph:
    def test_keeps_weights_and_nodes(self):
        g = complete_graph(8, seed=2)
        mst = kruskal_mst(g)
        sub = tree_only_subgraph(g, mst)
        assert sub.n == g.n
        assert sub.m == len(mst)
        for (u, v) in mst:
            assert sub.weight(u, v) == g.weight(u, v)


class TestConsistentAdversary:
    def test_wrong_tree_labels_pass_all_static_checks(self):
        """The point of the adversary: Well-Forming holds; only the
        Minimality comparisons can expose a non-MST."""
        g = random_connected_graph(18, 30, seed=3)
        wrong = swap_one_mst_edge(g, kruskal_mst(g))
        adv = labels_for_claimed_tree(g, wrong)
        for view in all_views(g, adv.labels):
            assert static_check(view) == [], view.node

    def test_wrong_tree_hierarchy_is_wellformed_but_not_minimal(self):
        g = random_connected_graph(18, 30, seed=4)
        wrong = swap_one_mst_edge(g, kruskal_mst(g))
        adv = labels_for_claimed_tree(g, wrong)
        adv.hierarchy.validate()              # Definition 5.1/5.2 hold
        assert not adv.hierarchy.verify_minimality()

    def test_true_tree_gives_marker_equivalent_labels(self):
        from repro.verification import run_marker
        g = random_connected_graph(14, 22, seed=5)
        honest = labels_for_claimed_tree(g, kruskal_mst(g))
        marker = run_marker(g)
        assert honest.tree.edge_set() == marker.tree.edge_set()
        assert honest.labels.keys() == marker.labels.keys()

    def test_adversary_candidates_restricted_to_tree(self):
        g = random_connected_graph(16, 26, seed=6)
        wrong = swap_one_mst_edge(g, kruskal_mst(g))
        adv = labels_for_claimed_tree(g, wrong)
        tree_edges = set(wrong)
        from repro.graphs.weighted import edge_key
        for frag in adv.hierarchy.fragments:
            if frag.candidate_edge is not None:
                assert edge_key(*frag.candidate_edge) in tree_edges
