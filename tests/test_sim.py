"""Unit tests for the simulation substrate: registers, network,
schedulers, daemons, and fault injection."""

import pytest

from repro.graphs.generators import path_graph, ring_graph
from repro.sim import (ALARM, AsynchronousScheduler, FaultInjector, Network,
                       PermutationDaemon, Protocol, RandomDaemon,
                       RoundRobinDaemon, SlowNodesDaemon,
                       SynchronousScheduler, bit_size, detection_distance,
                       first_alarm, register_bits)


class TestBitAccounting:
    def test_int_bits(self):
        assert bit_size(0) == 2
        assert bit_size(7) == 4
        assert bit_size(-7) == 4

    def test_none_and_bool(self):
        assert bit_size(None) == 1
        assert bit_size(True) == 1

    def test_string_bits(self):
        assert bit_size("abc") == 24

    def test_tuple_recursion(self):
        assert bit_size((1, 2)) == bit_size(1) + bit_size(2) + 4

    def test_unencodable_raises(self):
        with pytest.raises(TypeError):
            bit_size(object())

    def test_ghost_registers_excluded(self):
        regs = {"x": 7, "_ghost": 123456}
        assert register_bits(regs) == bit_size(7)


class CounterProtocol(Protocol):
    """Every node counts rounds and mirrors its left neighbour's count."""

    def init_node(self, ctx):
        ctx.set("count", 0)
        ctx.set("mirror", 0)

    def step(self, ctx):
        ctx.set("count", ctx.get("count") + 1)
        left = min(ctx.neighbors)
        ctx.set("mirror", ctx.read(left, "count", 0))


class TestSynchronousScheduler:
    def test_rounds_and_snapshot_semantics(self):
        net = Network(ring_graph(5))
        sched = SynchronousScheduler(net, CounterProtocol())
        sched.run(4)
        for v in net.graph.nodes():
            assert net.registers[v]["count"] == 4
            # mirror lags one round behind: it read the snapshot
            assert net.registers[v]["mirror"] == 3

    def test_stop_condition(self):
        net = Network(path_graph(4))

        class AlarmAtThree(Protocol):
            def init_node(self, ctx):
                ctx.set("c", 0)

            def step(self, ctx):
                ctx.set("c", ctx.get("c") + 1)
                if ctx.get("c") == 3 and ctx.node == 0:
                    ctx.alarm("boom")

        sched = SynchronousScheduler(net, AlarmAtThree())
        rounds = sched.run(10, stop_when=first_alarm)
        assert rounds == 3
        assert net.alarms() == {0: "boom"}

    def test_initialize_idempotent(self):
        net = Network(path_graph(3))
        sched = SynchronousScheduler(net, CounterProtocol())
        sched.initialize()
        sched.initialize()
        sched.run(1)
        assert net.registers[0]["count"] == 1


class TestAsynchronousScheduler:
    @pytest.mark.parametrize("daemon", [
        RoundRobinDaemon(), RandomDaemon(seed=1), PermutationDaemon(seed=1)])
    def test_rounds_mean_full_coverage(self, daemon):
        net = Network(ring_graph(6))
        sched = AsynchronousScheduler(net, CounterProtocol(), daemon)
        rounds = sched.run(3)
        assert rounds == 3
        for v in net.graph.nodes():
            assert net.registers[v]["count"] >= 3

    def test_slow_daemon_still_fair(self):
        net = Network(ring_graph(6))
        daemon = SlowNodesDaemon([0, 1], slowdown=3, seed=2)
        sched = AsynchronousScheduler(net, CounterProtocol(), daemon)
        rounds = sched.run(2)
        assert rounds == 2
        # fast nodes stepped roughly 3x more often
        assert net.registers[3]["count"] > net.registers[0]["count"]

    def test_activation_counter(self):
        net = Network(path_graph(4))
        sched = AsynchronousScheduler(net, CounterProtocol(),
                                      RoundRobinDaemon())
        sched.run(2)
        assert sched.activations >= 8


class TestNetwork:
    def test_install_and_alarm(self):
        net = Network(path_graph(3))
        net.install({0: {"x": 1}, 2: {ALARM: "bad"}})
        assert net.registers[0]["x"] == 1
        assert net.alarms() == {2: "bad"}

    def test_memory_accounting(self):
        net = Network(path_graph(2))
        net.install({0: {"x": 255}, 1: {"x": 1, "_g": 10 ** 9}})
        assert net.max_memory_bits() == bit_size(255)
        assert net.total_memory_bits() == bit_size(255) + bit_size(1)

    def test_clear(self):
        net = Network(path_graph(2))
        net.install({0: {"x": 1}})
        net.clear()
        assert net.registers[0] == {}


class TestFaults:
    def test_corrupt_marks_nodes(self):
        net = Network(path_graph(5))
        net.install({v: {"a": 10, "b": "hello"} for v in net.graph.nodes()})
        inj = FaultInjector(net, seed=1)
        hit = inj.corrupt_random_nodes(2)
        assert len(hit) == 2
        assert inj.faulty_nodes == hit
        for v in hit:
            assert net.registers[v].get("_faulty")

    def test_corrupt_changes_value(self):
        net = Network(path_graph(2))
        net.install({0: {"a": 10}})
        inj = FaultInjector(net, seed=3)
        inj.corrupt_register(0, "a")
        assert net.registers[0]["a"] != 10

    def test_alarm_register_protected(self):
        net = Network(path_graph(2))
        net.install({0: {"a": 1, "alarm": None}})
        inj = FaultInjector(net, seed=0)
        names = inj.corrupt_node(0, fraction=1.0)
        assert "alarm" not in names

    def test_detection_distance(self):
        net = Network(path_graph(6))
        inj = FaultInjector(net, seed=0)
        net.install({v: {"x": 1} for v in net.graph.nodes()})
        inj.corrupt_node(0)
        net.registers[3][ALARM] = "seen"
        assert detection_distance(net, inj.faulty_nodes) == 3

    def test_detection_distance_none_without_alarm(self):
        net = Network(path_graph(3))
        inj = FaultInjector(net, seed=0)
        net.install({0: {"x": 1}})
        inj.corrupt_node(0)
        assert detection_distance(net, inj.faulty_nodes) is None

    def test_perturbing_missing_register_refuses(self):
        """Regression: perturbation mode must not invent registers on
        nodes that never had them (it used to materialize the register
        with value 0, silently changing the memory accounting)."""
        net = Network(path_graph(2))
        net.install({0: {"a": 1}})
        inj = FaultInjector(net, seed=0)
        with pytest.raises(KeyError):
            inj.corrupt_register(0, "ghost_of_a_register")
        assert "ghost_of_a_register" not in net.registers[0]
        assert inj.faulty_nodes == []
        # an explicit value still models an adversary planting new state
        inj.corrupt_register(0, "planted", value=42)
        assert net.registers[0]["planted"] == 42


class TestAsyncStopGranularity:
    def test_stop_checked_inside_multi_node_batches(self):
        """Regression: a daemon handing out whole-network batches used to
        run the entire batch past the activation that satisfied
        ``stop_when``."""
        from repro.sim import Daemon

        class WholeNetworkDaemon(Daemon):
            def next_batch(self, nodes):
                return list(nodes)

        class AlarmOnFirstStep(Protocol):
            def step(self, ctx):
                ctx.set("stepped", True)
                ctx.alarm("first")

        net = Network(path_graph(6))
        sched = AsynchronousScheduler(net, AlarmOnFirstStep(),
                                      WholeNetworkDaemon())
        sched.run(3, stop_when=first_alarm)
        assert sched.activations == 1
        stepped = [v for v in net.graph.nodes()
                   if net.registers[v].get("stepped")]
        assert stepped == [net.graph.nodes()[0]]


class TestFastPathScheduler:
    """Unit-level checks of the dirty-set snapshot and quiescence skip
    (the bit-for-bit contract lives in test_scheduler_equivalence.py)."""

    def test_counter_protocol_matches_naive(self):
        nets = {}
        for fast in (False, True):
            net = Network(ring_graph(5))
            SynchronousScheduler(net, CounterProtocol(),
                                 fast_path=fast).run(4)
            nets[fast] = net.registers
        assert nets[False] == nets[True]

    def test_quiescent_protocol_fast_forwards(self):
        class WriteOnce(Protocol):
            def init_node(self, ctx):
                ctx.set("x", 0)

            def step(self, ctx):
                if ctx.get("x") == 0:
                    ctx.set("x", ctx.node + 1)

        net = Network(path_graph(4))
        sched = SynchronousScheduler(net, WriteOnce(), fast_path=True)
        executed = sched.run(1000)
        assert executed == 1000
        assert sched.rounds == 1000
        for v in net.graph.nodes():
            assert net.registers[v]["x"] == v + 1

    def test_custom_on_round_end_disables_fast_path(self):
        class HookedCounter(CounterProtocol):
            def on_round_end(self, network, round_index):
                network.registers[0]["hooked"] = round_index

        net = Network(ring_graph(4))
        sched = SynchronousScheduler(net, HookedCounter(), fast_path=True)
        assert not sched.fast_path
        sched.run(3)
        assert net.registers[0]["hooked"] == 3

    def test_external_writes_between_runs_are_seen(self):
        """After quiescence, registers rewritten from outside the context
        API (fault injection) must be re-read on the next run()."""
        class Mirror(Protocol):
            def init_node(self, ctx):
                ctx.set("seen", None)

            def step(self, ctx):
                left = min(ctx.neighbors)
                val = ctx.read(left, "mark", 0)
                if ctx.get("seen") != val:
                    ctx.set("seen", val)

        net = Network(ring_graph(4))
        sched = SynchronousScheduler(net, Mirror(), fast_path=True)
        sched.run(50)   # quiesces with seen == 0 everywhere
        net.registers[0]["mark"] = 7
        sched.run(50)
        right_of_0 = max(v for v in net.graph.nodes()
                         if min(net.graph.neighbors(v)) == 0)
        assert net.registers[right_of_0]["seen"] == 7

    def test_dirty_set_records_only_real_changes(self):
        from repro.sim.network import NodeContext

        net = Network(path_graph(2))
        net.install({0: {"a": 1}, 1: {}})
        dirty = set()
        snapshot = {v: dict(r) for v, r in net.registers.items()}
        ctx = NodeContext(net, 0, snapshot, dirty)
        ctx.set("a", 1)          # no-op write
        assert dirty == set()
        ctx.set("a", 2)
        assert dirty == {0}
        dirty.clear()
        ctx.unset("missing")     # removing nothing is not a change
        assert dirty == set()
        ctx.unset("a")
        assert dirty == {0}
