"""Restore-equivalence matrix for settle-state checkpoints.

The warm-start cache replays saved settled state instead of re-settling;
that is only trustworthy if restore is *indistinguishable* from never
having stopped.  These tests prove it at the storage-differential
suite's standard: settle → snapshot → restore into a freshly built
network/scheduler/protocol → inject fault → run, compared bit-for-bit —
full per-node register traces at every stop-condition poll, alarms,
round/activation/skip counters, memory-bit accounting — against the
uninterrupted settle → inject → run, across dict/schema/columnar
storage × sync/async/locality/independent schedules ×
verifier/hybrid/sqlog protocols, with adversarial junk planted in
nat/tuple columns *before* the snapshot.

The engine-level tests then pin the cache semantics: warm-started
``run_scenario`` results equal cold ones field for field, the cache key
ignores exactly the implementation-only schedule params (enumerated
from the registries, so a newly registered param cannot silently alias
a stale snapshot), and corrupt or truncated cache entries fall back to
a cold settle with a :class:`WarmCacheWarning` — never a crash, never a
silently wrong result.
"""

import os
from dataclasses import asdict, replace

import pytest

from repro.engine import ScenarioSpec, axis, run_scenario
from repro.engine.scenarios import FAULTS, PROTOCOLS, SCHEDULES
from repro.engine.spec import IMPL_SCHEDULE_PARAMS, Axis
from repro.engine.warmcache import (SEMANTIC_FAULT_KINDS, WarmCache,
                                    WarmCacheWarning, set_warm_cache,
                                    warm_key)
from repro.graphs.generators import random_connected_graph
from repro.sim import (AsynchronousScheduler, ConflictFreeDaemon,
                       FaultInjector, LocalityBatchDaemon, Network,
                       PermutationDaemon, SynchronousScheduler,
                       TiledConflictFreeDaemon)
from repro.sim.churn import _articulation_points
from repro.sim.snapshot import (SnapshotError, capture_run_state,
                                decode_snapshot, encode_snapshot,
                                restore_run_state, topology_signature)
from repro.verification.marker import run_marker

SETTLE_ROUNDS = 16
DETECT_ROUNDS = 40
DAEMON_SEED = 11
FAULT_SEED = 77

STORAGES = ("dict", "schema", "columnar", "numpy")
PROTOCOL_KINDS = ("verifier", "hybrid", "sqlog")
SCHEDULE_KINDS = ("sync", "permutation", "locality", "independent",
                  "tiled")


@pytest.fixture(scope="module")
def instance():
    graph = random_connected_graph(10, 16, seed=9)
    return graph, run_marker(graph)


def _build(instance, protocol_kind, schedule, storage, coalesce=True):
    """A fresh network/scheduler pair exactly as the engine builds one."""
    graph, marker = instance
    entry = PROTOCOLS[protocol_kind]
    synchronous = schedule == "sync"
    network = Network(graph)
    network.install(entry.labels(graph, marker))
    protocol = entry.make(synchronous, {})
    if synchronous:
        scheduler = SynchronousScheduler(network, protocol,
                                         storage=storage)
    else:
        daemons = {"locality": lambda: LocalityBatchDaemon(
                       graph, seed=DAEMON_SEED),
                   "independent": lambda: ConflictFreeDaemon(
                       graph, seed=DAEMON_SEED),
                   "tiled": lambda: TiledConflictFreeDaemon(
                       graph, seed=DAEMON_SEED),
                   "permutation": lambda: PermutationDaemon(
                       seed=DAEMON_SEED)}
        scheduler = AsynchronousScheduler(network, protocol,
                                          daemon=daemons[schedule](),
                                          storage=storage,
                                          coalesce=coalesce)
    return network, scheduler


def _plant_junk(network):
    """Adversarial junk a snapshot must carry: a string in a
    nat-declared register, an unhashable value in a tuple/str one, and
    an undeclared extra with a beyond-int64 payload."""
    v = network.graph.nodes()[1]
    registers = network.registers[v]
    schema = network.schema
    if schema is not None:
        nat = next((n for n, k in zip(schema.names, schema.kinds)
                    if k == "nat"), None)
        boxy = next((n for n, k in zip(schema.names, schema.kinds)
                     if k in ("tuple", "str")), None)
        if nat:
            registers[nat] = "junk-in-nat"
        if boxy:
            registers[boxy] = ("boxed", [1, 2])
    else:
        registers["junk_nat"] = "junk-in-nat"
        registers["junk_tup"] = ("boxed", [1, 2])
    registers["_ghost_extra"] = ("planted", 1 << 70)


def _settle(instance, protocol_kind, schedule, storage):
    network, scheduler = _build(instance, protocol_kind, schedule,
                                storage)
    settled = scheduler.run(SETTLE_ROUNDS)
    assert not network.has_alarm(), "honest labels must settle silently"
    _plant_junk(network)
    return network, scheduler, settled


def _detect(network, scheduler):
    """Inject the same fault and record everything observable at every
    stop-condition poll."""
    injector = FaultInjector(network, seed=FAULT_SEED)
    injector.corrupt_random_nodes(2)
    trace = []

    def record(net):
        trace.append({v: dict(net.registers[v])
                      for v in net.graph.nodes()})
        return net.has_alarm()

    rounds = scheduler.run(DETECT_ROUNDS, stop_when=record)
    return {
        "rounds": rounds,
        "sched_rounds": scheduler.rounds,
        "activations": getattr(scheduler, "activations", None),
        "skipped": getattr(scheduler, "steps_skipped", None),
        "alarms": dict(network.alarms()),
        "max_bits": network.max_memory_bits(),
        "total_bits": network.total_memory_bits(),
        "faulty": list(injector.faulty_nodes),
        "trace": trace,
    }


@pytest.mark.parametrize("storage", STORAGES)
@pytest.mark.parametrize("schedule", SCHEDULE_KINDS)
@pytest.mark.parametrize("protocol_kind", PROTOCOL_KINDS)
def test_restore_equivalence(instance, protocol_kind, schedule, storage):
    """settle→snapshot→restore→inject ≡ settle→inject, bit for bit."""
    network, scheduler, settled = _settle(instance, protocol_kind,
                                          schedule, storage)
    payload = capture_run_state(network, scheduler, settled)
    assert payload is not None
    blob = encode_snapshot(payload)          # through the wire format
    settled_registers = {v: dict(network.registers[v])
                         for v in network.graph.nodes()}
    reference = _detect(network, scheduler)

    fresh_net, fresh_sched = _build(instance, protocol_kind, schedule,
                                    storage)
    restored = restore_run_state(fresh_net, fresh_sched,
                                 decode_snapshot(blob))
    assert restored == settled
    assert {v: dict(fresh_net.registers[v]) for v in
            fresh_net.graph.nodes()} == settled_registers
    assert _detect(fresh_net, fresh_sched) == reference


@pytest.mark.parametrize("schedule", ("independent", "tiled"))
def test_restore_crosses_coalescing_modes(instance, schedule):
    """Coalescing is implementation-only across snapshots too: state
    captured from a coalescing scheduler restores into a
    non-coalescing one (and the numpy vector tier) with an identical
    detection run — the super-batch replays daemon-batch boundaries
    bit for bit, so the daemon's sweep state stays interchangeable."""
    network, scheduler, settled = _settle(instance, "verifier", schedule,
                                          "columnar")
    payload = capture_run_state(network, scheduler, settled)
    blob = encode_snapshot(payload)
    reference = _detect(network, scheduler)
    for storage, coalesce in (("columnar", False), ("numpy", False),
                              ("numpy", True)):
        fresh_net, fresh_sched = _build(instance, "verifier", schedule,
                                        storage, coalesce=coalesce)
        restored = restore_run_state(fresh_net, fresh_sched,
                                     decode_snapshot(blob))
        assert restored == settled
        assert _detect(fresh_net, fresh_sched) == reference, \
            (storage, coalesce)


@pytest.mark.parametrize("target_storage", ("dict", "columnar", "numpy"))
def test_restore_crosses_storage_backends(instance, target_storage):
    """A snapshot taken on one backend restores onto another (the cache
    key excludes ``storage``) with the same observable continuation —
    including numpy-tier snapshots warming plain-columnar runs and
    vice versa (the serialized buffer is the same raw int64 layout)."""
    source_storage = {"dict": "numpy", "columnar": "schema",
                      "numpy": "columnar"}[target_storage]
    network, scheduler, settled = _settle(instance, "verifier", "sync",
                                          source_storage)
    payload = capture_run_state(network, scheduler, settled)
    reference = _detect(network, scheduler)

    fresh_net, fresh_sched = _build(instance, "verifier", "sync",
                                    target_storage)
    assert restore_run_state(fresh_net, fresh_sched, payload) == settled
    assert _detect(fresh_net, fresh_sched) == reference


def test_restore_validates_before_mutating(instance):
    """A payload that does not fit the target raises and leaves the
    target untouched — the caller's cold fallback then runs clean."""
    network, scheduler, settled = _settle(instance, "verifier", "sync",
                                          "columnar")
    payload = capture_run_state(network, scheduler, settled)

    other_graph = random_connected_graph(12, 18, seed=4)
    other = Network(other_graph)
    entry = PROTOCOLS["verifier"]
    other.install(entry.labels(other_graph, run_marker(other_graph)))
    sched = SynchronousScheduler(other, entry.make(True, {}),
                                 storage="columnar")
    before = {v: dict(other.registers[v]) for v in other_graph.nodes()}
    with pytest.raises(SnapshotError):
        restore_run_state(other, sched, payload)
    assert {v: dict(other.registers[v])
            for v in other_graph.nodes()} == before

    # scheduler-kind mismatch, same topology
    net2, sched2 = _build(instance, "verifier", "permutation", "dict")
    with pytest.raises(SnapshotError):
        restore_run_state(net2, sched2, payload)
    # malformed payloads never half-apply either
    net3, sched3 = _build(instance, "verifier", "sync", "dict")
    with pytest.raises(SnapshotError):
        restore_run_state(net3, sched3, {"version": 99})


def _fresh_instance(instance):
    """A private graph copy (the churn tests mutate topology in place;
    the module-scoped instance must stay pristine)."""
    graph, marker = instance
    return graph.copy(), marker


def test_snapshot_round_trips_across_crash_rejoin(instance):
    """A snapshot taken *after* a crash + rejoin cycle restores into a
    freshly built network on the original graph: the rejoin rebuilds
    the exact original ports, so the topology signature matches and the
    continuation is bit-for-bit."""
    inst = _fresh_instance(instance)
    network, scheduler = _build(inst, "verifier", "sync", "columnar")
    scheduler.run(SETTLE_ROUNDS)
    victim = next(v for v in network.graph.nodes()
                  if v not in _articulation_points(network.graph))
    stub = network.remove_node(victim)
    scheduler.topology_changed()
    scheduler.run(4)
    network.add_node(victim, stub)
    view = network.registers[victim]
    for name in sorted(stub["registers"]):
        view[name] = stub["registers"][name]
    scheduler.topology_changed()
    scheduler.run(4)
    assert topology_signature(network.graph) == \
        topology_signature(instance[0])
    payload = capture_run_state(network, scheduler, scheduler.rounds)
    blob = encode_snapshot(payload)
    reference = _detect(network, scheduler)

    fresh_net, fresh_sched = _build(_fresh_instance(instance),
                                    "verifier", "sync", "columnar")
    restore_run_state(fresh_net, fresh_sched, decode_snapshot(blob))
    assert _detect(fresh_net, fresh_sched) == reference


@pytest.mark.parametrize("storage", ("dict", "columnar", "numpy"))
def test_snapshot_round_trips_while_node_is_down(instance, storage):
    """A snapshot taken mid-churn — one node crashed out — restores
    into a fresh network with the same node removed (identical port
    tombstones, identical freelist state observably), on any backend."""
    inst = _fresh_instance(instance)
    network, scheduler = _build(inst, "verifier", "sync", storage)
    scheduler.run(SETTLE_ROUNDS)
    victim = next(v for v in network.graph.nodes()
                  if v not in _articulation_points(network.graph))
    network.remove_node(victim)
    scheduler.topology_changed()
    scheduler.run(4)
    payload = capture_run_state(network, scheduler, scheduler.rounds)
    blob = encode_snapshot(payload)
    reference = _detect(network, scheduler)

    fresh_net, fresh_sched = _build(_fresh_instance(instance),
                                    "verifier", "sync", storage)
    fresh_net.remove_node(victim)
    fresh_sched.topology_changed()
    restore_run_state(fresh_net, fresh_sched, decode_snapshot(blob))
    assert _detect(fresh_net, fresh_sched) == reference


def test_snapshot_signature_guards_churned_topology(instance):
    """A settled snapshot must not restore onto a network whose
    topology has since churned (reweighted edge or missing node) — the
    signature check rejects it before any state is touched; payloads
    from before the signature existed still restore."""
    network, scheduler, settled = _settle(instance, "verifier", "sync",
                                          "columnar")
    payload = capture_run_state(network, scheduler, settled)
    graph, marker = instance

    # reweighted edge: same nodes, same ports, different weight
    g2 = graph.copy()
    u, v, w = next(iter(g2.edges()))
    g2.set_weight(u, v, max(x for _, _, x in g2.edges()) + 1)
    net2, sched2 = _build((g2, marker), "verifier", "sync", "columnar")
    before = {x: dict(net2.registers[x]) for x in g2.nodes()}
    with pytest.raises(SnapshotError, match="topology signature"):
        restore_run_state(net2, sched2, payload)
    assert {x: dict(net2.registers[x]) for x in g2.nodes()} == before

    # a node crashed out after the snapshot was taken
    net3, sched3 = _build(_fresh_instance(instance), "verifier", "sync",
                          "columnar")
    victim = next(x for x in net3.graph.nodes()
                  if x not in _articulation_points(net3.graph))
    net3.remove_node(victim)
    sched3.topology_changed()
    with pytest.raises(SnapshotError):
        restore_run_state(net3, sched3, payload)

    # pre-signature payloads (no ``topo_sig``) still restore
    legacy = decode_snapshot(encode_snapshot(payload))
    legacy["network"].pop("topo_sig")
    net4, sched4 = _build(_fresh_instance(instance), "verifier", "sync",
                          "columnar")
    assert restore_run_state(net4, sched4, legacy) == settled


def test_wire_format_rejects_corruption():
    payload = {"version": 1, "data": list(range(32))}
    blob = encode_snapshot(payload)
    assert decode_snapshot(blob) == payload
    for bad in (b"", b"junk", blob[:-1], blob[: len(blob) // 2],
                blob[:7] + b"\x00" * (len(blob) - 7)):
        with pytest.raises(SnapshotError):
            decode_snapshot(bad)
    flipped = bytearray(blob)
    flipped[len(blob) // 2] ^= 0xFF
    with pytest.raises(SnapshotError):
        decode_snapshot(bytes(flipped))


# ---------------------------------------------------------------------------
# engine-level warm start
# ---------------------------------------------------------------------------

def _spec(**overrides):
    base = dict(topology=axis("random", n=10, extra=14),
                fault=axis("corrupt", count=1),
                schedule=axis("sync", storage="columnar"),
                seed=5)
    base.update(overrides)
    return ScenarioSpec(**base)


def _strip(result):
    """Everything deterministic about a result (drop wall time and the
    cache bookkeeping the comparison is about)."""
    return {k: v for k, v in asdict(result).items()
            if k not in ("wall_time", "cache_hit", "settle_rounds_saved",
                         "spec")}


@pytest.fixture
def warm_dir(tmp_path):
    cache = WarmCache(str(tmp_path / "warm"))
    previous = set_warm_cache(cache)
    yield cache
    set_warm_cache(previous)


@pytest.mark.parametrize("schedule", (axis("sync", storage="columnar"),
                                      axis("permutation")))
def test_run_scenario_warm_equals_cold(tmp_path, schedule):
    spec = _spec(schedule=schedule)
    cold = run_scenario(spec)
    cache = WarmCache(str(tmp_path / "warm"))
    previous = set_warm_cache(cache)
    try:
        miss = run_scenario(spec)
        hit = run_scenario(spec)
    finally:
        set_warm_cache(previous)
    assert miss.cache_hit is False and miss.settle_rounds_saved == 0
    assert hit.cache_hit is True
    assert hit.settle_rounds_saved == cold.settle_rounds > 0
    assert _strip(miss) == _strip(cold)
    assert _strip(hit) == _strip(cold)
    assert (cache.hits, cache.misses) == (1, 1)
    assert cold.cache_hit is None            # no cache: never consulted


def test_warm_cache_shared_across_impl_params(warm_dir):
    """`storage`/`bulk`/... are proven equivalent, so cells differing
    only in them share one entry — and restoring a columnar-written
    snapshot into a dict-backed run reproduces the cold result."""
    cold = run_scenario(_spec())           # columnar, populates
    for params in ({"storage": "dict"}, {"storage": "schema"},
                   {"bulk": False}, {"fast_path": False}):
        result = run_scenario(_spec(schedule=axis("sync", **params)))
        assert result.cache_hit is True, params
        assert _strip(result) == _strip(cold)
    assert warm_dir.misses == 1


def test_warm_cache_not_consulted_without_settle_phase(warm_dir):
    result = run_scenario(_spec(fault=axis("none")))
    assert result.cache_hit is None
    assert (warm_dir.hits, warm_dir.misses) == (0, 0)


def test_populate_only_mode_never_restores(tmp_path):
    """``restore=False`` (--no-warm-start): every lookup misses but the
    settled state is still stored for a later warm run."""
    root = str(tmp_path / "warm")
    spec = _spec()
    previous = set_warm_cache(WarmCache(root, restore=False))
    try:
        first = run_scenario(spec)
        second = run_scenario(spec)
    finally:
        set_warm_cache(previous)
    assert first.cache_hit is False and second.cache_hit is False
    previous = set_warm_cache(WarmCache(root))
    try:
        third = run_scenario(spec)
    finally:
        set_warm_cache(previous)
    assert third.cache_hit is True


# ---------------------------------------------------------------------------
# cache-key properties (enumerated from the registries)
# ---------------------------------------------------------------------------

def _key_of(spec, settle_budget=40, topology_seed=123):
    synchronous, _ = SCHEDULES[spec.schedule.kind]
    return warm_key(spec, synchronous, settle_budget, topology_seed,
                    spec.derived_seed("daemon"))


def test_impl_only_schedule_params_never_change_the_key():
    """For every registered schedule kind, every implementation-only
    param is invisible to both the key and the daemon seed."""
    assert {"storage", "bulk", "fast_path", "dirty_aware",
            "coalesce", "vec_min_batch"} <= set(IMPL_SCHEDULE_PARAMS)
    for kind in sorted(SCHEDULES):
        base = _spec(schedule=Axis(kind))
        for param in sorted(IMPL_SCHEDULE_PARAMS):
            varied = _spec(schedule=axis(kind, **{param: "varied"}))
            assert _key_of(varied) == _key_of(base), (kind, param)
            assert varied.derived_seed("daemon") == \
                base.derived_seed("daemon"), (kind, param)


def test_semantic_schedule_params_always_change_the_key():
    """Any schedule param *outside* IMPL_SCHEDULE_PARAMS is key-relevant
    by construction — a future registered knob cannot silently alias a
    stale snapshot.  Spot-checked on a real semantic param too."""
    for kind in sorted(SCHEDULES):
        base = _spec(schedule=Axis(kind))
        varied = _spec(schedule=axis(kind, zz_future_knob=1))
        assert _key_of(varied) != _key_of(base), kind
    slow2 = _spec(schedule=axis("slow_nodes", count=2, slowdown=4))
    slow3 = _spec(schedule=axis("slow_nodes", count=3, slowdown=4))
    assert _key_of(slow2) != _key_of(slow3)


def test_fault_axis_keying_follows_semantic_registry():
    """For every registered fault kind: semantic kinds (churn) key on
    their full axis — kind and every parameter — while ordinary
    injection faults stay invisible to the key (they apply after the
    settle phase the cache stores).  Enumerated from the registry, so a
    future topology-mutating fault kind must declare itself via
    ``mark_fault_semantic`` or inherit the proven-safe default."""
    for kind in sorted(FAULTS):
        base = _spec(fault=Axis(kind))
        varied = _spec(fault=axis(kind, zz_probe=1))
        changed = _key_of(varied) != _key_of(base)
        assert changed == (kind in SEMANTIC_FAULT_KINDS), kind


def test_every_churn_param_changes_the_key():
    """Each of the churn axis's parameters — events, window, crash,
    reweight — lands in the warm key: a churned cell never aliases a
    cell with a different event stream (and never a static one)."""
    assert "churn" in SEMANTIC_FAULT_KINDS
    base = _spec(fault=axis("churn"))
    assert _key_of(base) != _key_of(_spec(fault=axis("corrupt",
                                                     count=1)))
    for params in ({"events": 9}, {"window": 13}, {"crash": False},
                   {"reweight": False}):
        varied = _spec(fault=axis("churn", **params))
        assert _key_of(varied) != _key_of(base), params
    # identical churn axes still share (the cache stays useful)
    assert _key_of(_spec(fault=axis("churn", events=9))) == \
        _key_of(_spec(fault=axis("churn", events=9)))


def test_churn_cells_warm_start_cleanly(warm_dir):
    """The settle phase precedes every churn event, so churn cells can
    warm-start; the semantic key keeps their entries private, and a
    warm churn run equals the cold one field for field."""
    spec = _spec(fault=axis("churn", events=3))
    miss = run_scenario(spec)
    hit = run_scenario(spec)
    assert miss.cache_hit is False and hit.cache_hit is True
    assert hit.settle_rounds_saved > 0
    assert _strip(hit) == _strip(miss)
    assert (warm_dir.hits, warm_dir.misses) == (1, 1)


def test_key_covers_semantic_axes_and_horizon():
    base = _spec()
    assert _key_of(base) == _key_of(base)
    # topology spec, topology seed, protocol, settle horizon all enter
    assert _key_of(_spec(topology=axis("random", n=12, extra=14))) \
        != _key_of(base)
    assert _key_of(base, topology_seed=124) != _key_of(base)
    assert _key_of(_spec(protocol=axis("hybrid"))) != _key_of(base)
    assert _key_of(base, settle_budget=41) != _key_of(base)
    # synchronous settling is seed-free: fault cells differing only in
    # base seed (hence fault/daemon seeds) share the entry...
    assert _key_of(_spec(seed=6)) == _key_of(base)
    # ...asynchronous settling consumes daemon randomness, so the seed
    # (via the derived daemon seed) splits the key
    async_base = _spec(schedule=axis("permutation"))
    async_other = _spec(schedule=axis("permutation"), seed=6)
    assert _key_of(async_base) != _key_of(async_other)
    # the fault axis feeds the daemon seed derivation, so async cells
    # with different faults settle differently and must not share
    fault_a = _spec(schedule=axis("permutation"))
    fault_b = _spec(schedule=axis("permutation"),
                    fault=axis("scramble", count=1))
    assert (_key_of(fault_a) == _key_of(fault_b)) == \
        (fault_a.derived_seed("daemon") == fault_b.derived_seed("daemon"))


# ---------------------------------------------------------------------------
# corrupt cache entries: warn + cold fallback, never wrong
# ---------------------------------------------------------------------------

def _single_entry(cache):
    files = [f for f in os.listdir(cache.root) if f.endswith(".snap")]
    assert len(files) == 1
    return os.path.join(cache.root, files[0])


@pytest.mark.parametrize("corruption", ("bitflip", "truncate", "stub"))
def test_corrupt_cache_entry_falls_back_cold(warm_dir, corruption):
    spec = _spec()
    cold = run_scenario(spec)              # miss: populates the cache
    path = _single_entry(warm_dir)
    blob = open(path, "rb").read()
    if corruption == "bitflip":
        bad = bytearray(blob)
        bad[len(bad) // 2] ^= 0x01
        blob = bytes(bad)
    elif corruption == "truncate":
        blob = blob[: len(blob) // 2]
    else:
        blob = blob[:3]
    with open(path, "wb") as fh:
        fh.write(blob)

    with pytest.warns(WarmCacheWarning):
        fallback = run_scenario(spec)
    assert fallback.cache_hit is False
    assert _strip(fallback) == _strip(cold)
    # the cold fallback repaired the entry in place
    repaired = run_scenario(spec)
    assert repaired.cache_hit is True
    assert _strip(repaired) == _strip(cold)


def test_valid_snapshot_for_wrong_network_falls_back_cold(warm_dir,
                                                          tmp_path):
    """A checksum-valid payload that fails restore validation (here: a
    different topology planted under the right key) warns and settles
    cold instead of crashing or half-applying."""
    spec = _spec()
    cold = run_scenario(spec)
    path = _single_entry(warm_dir)
    payload = decode_snapshot(open(path, "rb").read())
    payload["network"]["nodes"] = payload["network"]["nodes"][:-1]
    with open(path, "wb") as fh:
        fh.write(encode_snapshot(payload))
    with pytest.warns(WarmCacheWarning):
        fallback = run_scenario(spec)
    assert fallback.cache_hit is False
    assert _strip(fallback) == _strip(cold)
