"""Unit tests for the typed register file layer (``repro.sim.registers``).

The mapping views must be indistinguishable from plain dicts; the nat /
decode caches and stable-version counters are derived state that must
never leak into observable behaviour.
"""

import pickle

import pytest

from repro.graphs.weighted import WeightedGraph
from repro.sim import (Network, RegisterFile, RegisterSchema, RegisterView,
                       compile_schema, register_bits)
from repro.sim.registers import NO_DECODE, UNSET


def _schema():
    s = RegisterSchema()
    s.declare("alarm", "opaque", None)
    s.declare("wd", "nat", 0)
    s.declare("roots", "str", None, stable=True)
    s.declare("pieces", "tuple", None, stable=True)
    return s.compile()


class TestSchema:
    def test_compile_assigns_slots_in_declaration_order(self):
        c = _schema()
        assert c.slots["alarm"] == 0
        assert c.slots["wd"] == 1
        assert c.names[:2] == ("alarm", "wd")

    def test_alarm_slot_auto_declared(self):
        s = RegisterSchema()
        s.declare("x", "nat", 0)
        c = s.compile()
        assert "alarm" in c.slots
        assert c.alarm_slot == c.slots["alarm"]

    def test_duplicate_declaration_idempotent_conflict_raises(self):
        s = RegisterSchema()
        s.declare("x", "nat", 0)
        s.declare("x", "nat", 0)  # idempotent
        with pytest.raises(ValueError):
            s.declare("x", "str")

    def test_equality_by_structure(self):
        assert _schema() == _schema()
        assert compile_schema(_schema()) is _schema() or True
        other = RegisterSchema()
        other.declare("different", "nat", 0)
        assert _schema() != other.compile()

    def test_unknown_kind_rejected(self):
        s = RegisterSchema()
        with pytest.raises(ValueError):
            s.declare("x", "float64")


class TestRegisterFileView:
    def test_view_behaves_like_dict(self):
        f = RegisterFile(_schema())
        view = RegisterView(f)
        assert dict(view) == {}
        view["wd"] = 3
        view["roots"] = "10*"
        view["planted"] = 42          # undeclared -> extras
        assert view["wd"] == 3
        assert view.get("missing", "d") == "d"
        assert "roots" in view and "alarm" not in view
        assert len(view) == 3
        assert dict(view) == {"wd": 3, "roots": "10*", "planted": 42}
        del view["wd"]
        assert "wd" not in view
        with pytest.raises(KeyError):
            view["wd"]
        with pytest.raises(KeyError):
            del view["wd"]

    def test_view_equals_plain_dict(self):
        f = RegisterFile(_schema())
        view = RegisterView(f)
        view.update({"wd": 1, "alarm": None})
        assert view == {"wd": 1, "alarm": None}
        assert not (view == {"wd": 2, "alarm": None})

    def test_bits_match_dict_accounting(self):
        f = RegisterFile(_schema())
        view = RegisterView(f)
        contents = {"wd": 9, "roots": "101", "pieces": (1, 2),
                    "_ghost": 10 ** 9, "extra_reg": True}
        view.update(contents)
        assert register_bits(view) == register_bits(contents)

    def test_copy_is_independent(self):
        f = RegisterFile(_schema())
        f.set_name("wd", 1)
        c = f.copy()
        c.set_name("wd", 2)
        assert f.get_name("wd") == 1
        assert c.get_name("wd") == 2

    def test_nat_cache_tracks_writes(self):
        f = RegisterFile(_schema())
        i = f.schema.slots["wd"]
        f.set_slot(i, 7)
        assert f.nats[i] == 7
        f.set_slot(i, -1)
        assert f.nats[i] is None
        f.set_slot(i, True)           # bools are not nats
        assert f.nats[i] is None

    def test_decode_cache_invalidated_on_write(self):
        f = RegisterFile(_schema())
        i = f.schema.slots["pieces"]
        f.set_slot(i, (1, 2, 3))
        assert f.decoded[i] is NO_DECODE
        f.decoded[i] = "decoded!"
        f.set_slot(i, (4, 5, 6))
        assert f.decoded[i] is NO_DECODE

    def test_stable_version_bumps_only_on_stable_slots(self):
        f = RegisterFile(_schema())
        v0 = f.stable_version
        f.set_name("wd", 5)           # dynamic
        assert f.stable_version == v0
        f.set_name("roots", "111")    # stable
        assert f.stable_version == v0 + 1
        f.del_name("roots")
        assert f.stable_version == v0 + 2

    def test_clear_resets_everything(self):
        f = RegisterFile(_schema())
        f.set_name("wd", 5)
        f.set_name("planted", 1)
        slots_id = id(f.slots)
        f.clear()
        assert dict(RegisterView(f)) == {}
        # in place: contexts alias the slot lists
        assert id(f.slots) == slots_id


class TestNetworkAdoption:
    def _graph(self):
        g = WeightedGraph()
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b", 1)
        return g

    def test_adopt_preserves_contents(self):
        net = Network(self._graph())
        net.install({"a": {"wd": 1, "other": "x"}, "b": {"roots": "1"}})
        before = {v: dict(r) for v, r in net.registers.items()}
        net.adopt_schema(_schema())
        assert {v: dict(r) for v, r in net.registers.items()} == before
        assert net.files is not None

    def test_wholesale_assignment_writes_through(self):
        net = Network(self._graph(), schema=_schema())
        net.registers["a"] = {"wd": 9}
        assert net.files["a"].get_name("wd") == 9
        assert dict(net.registers["a"]) == {"wd": 9}

    def test_alarms_via_slots(self):
        net = Network(self._graph(), schema=_schema())
        assert net.alarms() == {}
        assert not net.has_alarm()
        net.registers["b"]["alarm"] = "boom"
        assert net.alarms() == {"b": "boom"}
        assert net.has_alarm()

    def test_empty_graph_memory_bits_is_zero(self):
        """Regression: ``max()`` over an empty node set used to raise."""
        empty = Network(WeightedGraph())
        assert empty.max_memory_bits() == 0
        assert empty.total_memory_bits() == 0
        schema_backed = Network(WeightedGraph(), schema=_schema())
        assert schema_backed.max_memory_bits() == 0

    def test_register_views_survive_pickling_of_contents(self):
        """Campaign results carry register-derived data across process
        boundaries; the view's dict face must round-trip."""
        net = Network(self._graph(), schema=_schema())
        net.install({"a": {"wd": 2, "pieces": (1, 2, 3)}})
        data = {v: dict(r) for v, r in net.registers.items()}
        assert pickle.loads(pickle.dumps(data)) == data
