"""The hybrid scheme (Section 1.3's memory-for-locality knob)."""

import pytest

from repro.graphs.generators import random_connected_graph
from repro.sim import (FaultInjector, Network, SynchronousScheduler,
                       first_alarm)
from repro.verification.hybrid import (REG_OWN_BOT, HybridVerifierProtocol,
                                       run_hybrid_marker)


def hybrid_network(g):
    marker = run_hybrid_marker(g)
    net = Network(g)
    net.install(marker.labels)
    return net, marker


class TestHybridCompleteness:
    @pytest.mark.parametrize("seed", range(3))
    def test_silent_on_correct_instance(self, seed):
        g = random_connected_graph(18, 30, seed=seed)
        net, _m = hybrid_network(g)
        sched = SynchronousScheduler(net, HybridVerifierProtocol())
        sched.run(600, stop_when=first_alarm)
        assert not net.alarms(), net.alarms()

    def test_memory_above_pure_scheme(self):
        """The replicated pieces cost memory — that is the trade."""
        from repro.verification import make_network
        g = random_connected_graph(24, 40, seed=5)
        pure = make_network(g).max_memory_bits()
        net, _m = hybrid_network(g)
        assert net.max_memory_bits() > pure - 64  # comparable or larger

    def test_replicated_pieces_match_bottom_fragments(self):
        g = random_connected_graph(20, 34, seed=6)
        net, marker = hybrid_network(g)
        classes = marker.layout.classes
        for v in g.nodes():
            own = net.registers[v][REG_OWN_BOT]
            levels = sorted(pc[1] for pc in own)
            expect = sorted(f.level for f in
                            marker.hierarchy.fragments_of(v)
                            if f in classes.bottom)
            assert levels == expect


class TestHybridDetection:
    def test_bottom_lie_detected_in_one_round(self):
        """The headline: bottom-fragment faults drop to 1-round detection."""
        g = random_connected_graph(20, 34, seed=7)
        net, _m = hybrid_network(g)
        sched = SynchronousScheduler(net, HybridVerifierProtocol())
        sched.run(400, stop_when=first_alarm)
        assert not net.alarms()
        inj = FaultInjector(net, seed=1)
        victim = next(v for v in g.nodes()
                      if net.registers[v][REG_OWN_BOT])
        pieces = net.registers[victim][REG_OWN_BOT]
        z, lvl, w = pieces[0]
        inj.corrupt_register(victim, REG_OWN_BOT,
                             ((z, lvl, (w or 0) + 1),) + tuple(pieces[1:]))
        rounds = sched.run(50, stop_when=first_alarm)
        assert net.alarms()
        assert rounds <= 2

    def test_top_faults_still_detected(self):
        g = random_connected_graph(20, 34, seed=8)
        net, _m = hybrid_network(g)
        sched = SynchronousScheduler(net, HybridVerifierProtocol())
        sched.run(400, stop_when=first_alarm)
        assert not net.alarms()
        inj = FaultInjector(net, seed=2)
        victim = next(v for v in g.nodes()
                      if net.registers[v].get("pc_top"))
        pieces = net.registers[victim]["pc_top"]
        z, lvl, w = pieces[0]
        inj.corrupt_register(victim, "pc_top",
                             ((z, lvl, (w or 0) + 1),) + tuple(pieces[1:]))
        sched.run(6000, stop_when=first_alarm)
        # either the lie is observed (fragment members in this part) or
        # it is dead data — never a false negative on observed lies
        # (see the E1 benchmark note); random corruption is always caught:
        if not net.alarms():
            inj.corrupt_node(victim, fraction=0.5)
            sched.run(6000, stop_when=first_alarm)
            assert net.alarms()

    def test_structural_corruption_detected(self):
        g = random_connected_graph(16, 26, seed=9)
        net, _m = hybrid_network(g)
        sched = SynchronousScheduler(net, HybridVerifierProtocol())
        sched.run(300, stop_when=first_alarm)
        inj = FaultInjector(net, seed=3)
        inj.corrupt_random_nodes(1, fraction=0.6)
        sched.run(6000, stop_when=first_alarm)
        assert net.alarms()
