"""The cross-commit campaign differ (``repro.engine.differ``).

A dump joined against itself must be clean; controlled edits to single
metrics must flag exactly the right regressions; the CLI must exit
non-zero on regressions (and zero under ``--warn-only``), so CI can
gate on it directly.
"""

import json

from repro.engine import (CampaignRunner, DiffConfig, diff_paths,
                          diff_records, smoke_campaign)
from repro.engine.__main__ import main as engine_main
from repro.engine.runner import scenario_record


def _records(path_specs, tmp_path, name, edit=None):
    result = CampaignRunner(workers=1).run(path_specs)
    records = [scenario_record(r) for r in result]
    if edit is not None:
        edit(records)
    path = tmp_path / name
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
    return path, records


def test_self_diff_is_clean(tmp_path):
    specs = smoke_campaign(seed=3)[:4]
    old, _ = _records(specs, tmp_path, "old.jsonl")
    new, _ = _records(specs, tmp_path, "new.jsonl")
    result = diff_paths(str(old), str(new))
    assert result.ok
    assert result.joined == 4
    assert not result.missing and not result.added


def test_flags_each_regression_kind(tmp_path):
    specs = smoke_campaign(seed=3)[:4]
    old, base = _records(specs, tmp_path, "old.jsonl")

    def worsen(records):
        detected = [r for r in records
                    if r["rounds_to_detection"] is not None]
        assert detected, "smoke campaign must contain a detection"
        detected[0]["rounds_to_detection"] += 5
        records[0]["max_memory_bits"] += 1
        records[1]["violation"] = "soundness"
        records[2]["wall_time"] = records[2]["wall_time"] * 10 + 1.0

    new, _ = _records(specs, tmp_path, "new.jsonl", edit=worsen)
    result = diff_paths(str(old), str(new))
    metrics = sorted({r.metric for r in result.regressions})
    assert "rounds_to_detection" in metrics
    assert "max_memory_bits" in metrics
    assert "violation" in metrics
    assert "wall_time" in metrics


def test_detection_lost_is_a_regression():
    old = {("k", 1): {"key": "k", "seed": 1, "violation": None,
                      "rounds_to_detection": 9, "expected_detection": True,
                      "max_memory_bits": 1, "total_memory_bits": 1,
                      "wall_time": 0.1}}
    new = {("k", 1): dict(old[("k", 1)], rounds_to_detection=None,
                          violation="soundness")}
    result = diff_records(old, new)
    assert not result.ok
    assert any(r.metric == "violation" for r in result.regressions)


def test_tolerances_and_missing(tmp_path):
    old = {("k", 1): {"key": "k", "seed": 1, "violation": None,
                      "rounds_to_detection": 100, "expected_detection": True,
                      "max_memory_bits": 50, "total_memory_bits": 500,
                      "wall_time": 0.1},
           ("gone", 2): {"key": "gone", "seed": 2, "violation": None,
                         "rounds_to_detection": None,
                         "expected_detection": False,
                         "max_memory_bits": 1, "total_memory_bits": 1,
                         "wall_time": 0.1}}
    new = {("k", 1): dict(old[("k", 1)], rounds_to_detection=105)}
    assert not diff_records(old, new).ok
    relaxed = diff_records(old, new, DiffConfig(rounds_tol=0.1))
    assert relaxed.ok
    assert relaxed.missing == [("gone", 2)]
    strict = diff_records(old, new, DiffConfig(rounds_tol=0.1,
                                               strict_missing=True))
    assert not strict.ok


def test_fixed_violation_skips_perf_comparison():
    """A commit that *fixes* a violation must not fail the gate because
    the broken baseline's metrics looked 'faster' (e.g. a premature
    alarm that detected in 2 rounds)."""
    old = {("k", 1): {"key": "k", "seed": 1, "violation": "completeness",
                      "rounds_to_detection": 2, "expected_detection": True,
                      "max_memory_bits": 10, "total_memory_bits": 10,
                      "wall_time": 0.01}}
    new = {("k", 1): dict(old[("k", 1)], violation=None,
                          rounds_to_detection=9, max_memory_bits=50,
                          total_memory_bits=200)}
    result = diff_records(old, new)
    assert result.ok
    assert any(r.metric == "violation" for r in result.improvements)


def test_zero_baseline_tolerance_is_absolute():
    """At a zero baseline the relative tolerance acts as an absolute
    allowance (otherwise --rounds-tol could never admit a 0 -> 1
    shift)."""
    rec = {"key": "k", "seed": 1, "violation": None,
           "rounds_to_detection": 0, "expected_detection": True,
           "max_memory_bits": 1, "total_memory_bits": 1, "wall_time": 0.01}
    old = {("k", 1): rec}
    new = {("k", 1): dict(rec, rounds_to_detection=1)}
    assert not diff_records(old, new).ok
    assert diff_records(old, new, DiffConfig(rounds_tol=1.0)).ok


def test_added_scenarios_are_named_and_gated():
    """Scenarios present only in the new dump are reported as a named
    category (added) instead of silently dropped from the join — and
    an added scenario that arrives *violating* is a regression even
    though it has no baseline record."""
    base = {"key": "k", "seed": 1, "violation": None,
            "rounds_to_detection": 5, "expected_detection": True,
            "max_memory_bits": 1, "total_memory_bits": 1,
            "wall_time": 0.1}
    old = {("k", 1): base}
    clean_add = {("k", 1): base,
                 ("fresh", 2): dict(base, key="fresh", seed=2)}
    result = diff_records(old, clean_add)
    assert result.ok
    assert result.added == [("fresh", 2)]
    assert "added scenario" in result.summary()
    bad_add = {("k", 1): base,
               ("fresh", 2): dict(base, key="fresh", seed=2,
                                  violation="soundness")}
    result = diff_records(old, bad_add)
    assert not result.ok
    assert [r.metric for r in result.regressions] == ["added-violation"]


def test_removed_scenarios_are_named():
    base = {"key": "k", "seed": 1, "violation": None,
            "rounds_to_detection": 5, "expected_detection": True,
            "max_memory_bits": 1, "total_memory_bits": 1,
            "wall_time": 0.1}
    old = {("k", 1): base, ("gone", 2): dict(base, key="gone", seed=2)}
    result = diff_records(old, {("k", 1): base})
    assert result.ok and result.missing == [("gone", 2)]
    assert "removed scenario" in result.summary()


def test_soft_time_warns_but_keeps_hard_metrics(tmp_path):
    """--soft-time: wall-time blowups become warnings (exit 0) while
    rounds/memory regressions still fail — the hardened CI gate."""
    rec = {"key": "k", "seed": 1, "violation": None,
           "rounds_to_detection": 5, "expected_detection": True,
           "max_memory_bits": 10, "total_memory_bits": 10,
           "wall_time": 1.0}
    old = {("k", 1): rec}
    slow = {("k", 1): dict(rec, wall_time=9.0)}
    soft = diff_records(old, slow, DiffConfig(soft_time=True))
    assert soft.ok
    assert [w.metric for w in soft.warnings] == ["wall_time"]
    assert "WARNING" in soft.summary()
    assert not diff_records(old, slow).ok   # hard by default
    worse = {("k", 1): dict(rec, wall_time=9.0, max_memory_bits=11)}
    hard = diff_records(old, worse, DiffConfig(soft_time=True))
    assert not hard.ok
    assert [r.metric for r in hard.regressions] == ["max_memory_bits"]
    # CLI plumbing
    old_p = tmp_path / "old.jsonl"
    new_p = tmp_path / "new.jsonl"
    old_p.write_text(json.dumps(rec) + "\n")
    new_p.write_text(json.dumps(dict(rec, wall_time=9.0)) + "\n")
    assert engine_main(["diff", str(old_p), str(new_p)]) == 1
    assert engine_main(["diff", str(old_p), str(new_p),
                        "--soft-time"]) == 0


def test_cli_exit_codes(tmp_path):
    specs = smoke_campaign(seed=3)[:3]
    old, _ = _records(specs, tmp_path, "old.jsonl")

    def worsen(records):
        records[0]["max_memory_bits"] += 8

    new, _ = _records(specs, tmp_path, "new.jsonl", edit=worsen)
    assert engine_main(["diff", str(old), str(old)]) == 0
    assert engine_main(["diff", str(old), str(new)]) == 1
    assert engine_main(["diff", str(old), str(new), "--warn-only"]) == 0
    assert engine_main(["diff", str(old), str(new), "--mem-tol", "0.5"]) == 0


def _rec(**over):
    base = {"key": "k", "seed": 1, "violation": None,
            "expected_detection": True, "rounds_to_detection": 3,
            "max_memory_bits": 10, "total_memory_bits": 40,
            "wall_time": 0.01, "error": None, "status": "ok"}
    base.update(over)
    return base


def test_error_appeared_for_every_failure_status():
    """A cell that newly errors/times out/crashes/quarantines is one
    named regression — never a crash, never a metric comparison against
    its junk numbers."""
    from repro.engine import record_failure

    old = {("k", 1): _rec()}
    for status in ("error", "timeout", "crashed", "quarantined"):
        new = {("k", 1): _rec(status=status, error="boom",
                              rounds_to_detection=None,
                              max_memory_bits=0, total_memory_bits=0)}
        result = diff_records(old, new)
        assert not result.ok
        assert [r.metric for r in result.regressions] == \
            ["error-appeared"], status
        assert status in str(result.regressions[0].new)
        assert record_failure(new[("k", 1)]) == status


def test_error_cleared_is_an_improvement_unless_violating():
    old = {("k", 1): _rec(status="crashed", error="died",
                          rounds_to_detection=None, max_memory_bits=0,
                          total_memory_bits=0)}
    fixed = {("k", 1): _rec()}
    result = diff_records(old, fixed)
    assert result.ok
    assert [r.metric for r in result.improvements] == ["error-cleared"]

    # clearing a crash into a soundness violation is no fix
    broken = {("k", 1): _rec(violation="soundness")}
    result = diff_records(old, broken)
    assert not result.ok
    assert [r.metric for r in result.regressions] == ["violation"]


def test_both_failed_never_compares_metrics():
    """Two failed records carry junk metrics on both sides: the differ
    must stay silent on numbers and only warn when the kind changed."""
    old = {("k", 1): _rec(status="timeout", error="slow",
                          rounds_to_detection=None,
                          max_memory_bits=0, total_memory_bits=0)}
    same = {("k", 1): _rec(status="timeout", error="slow again",
                           rounds_to_detection=None,
                           max_memory_bits=999999,
                           total_memory_bits=999999)}
    result = diff_records(old, same)
    assert result.ok and not result.warnings

    changed = {("k", 1): _rec(status="quarantined", error="parked",
                              rounds_to_detection=None,
                              max_memory_bits=0, total_memory_bits=0)}
    result = diff_records(old, changed)
    assert result.ok
    assert [w.metric for w in result.warnings] == ["error-status"]
    assert (result.warnings[0].old, result.warnings[0].new) == \
        ("timeout", "quarantined")


def test_legacy_error_string_records_still_join():
    """Pre-supervisor dumps have no status field, only ``error``; they
    must diff cleanly against new status-carrying dumps."""
    legacy = {"key": "k", "seed": 1, "error": "ValueError: boom",
              "violation": "ValueError: boom", "expected_detection": True,
              "rounds_to_detection": None, "max_memory_bits": 0,
              "total_memory_bits": 0, "wall_time": 0.01}
    old = {("k", 1): legacy}
    new = {("k", 1): _rec(status="error", error="ValueError: boom",
                          rounds_to_detection=None, max_memory_bits=0,
                          total_memory_bits=0)}
    result = diff_records(old, new)
    assert result.ok and not result.warnings   # both are kind "error"
    assert diff_records(old, {("k", 1): _rec()}).improvements
