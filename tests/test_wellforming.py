"""The 1-round static checks (Section 5): complete on marker output,
sound against targeted corruption of each condition."""

import pytest

from repro.graphs.generators import (caterpillar_graph,
                                     random_connected_graph, star_graph)
from repro.labels import registers as R
from repro.labels.views import StaticView, all_views
from repro.labels.wellforming import (check_endp_parents, check_jmask_delim,
                                      check_partitions, check_roots_string,
                                      check_size, check_spanning_tree,
                                      level_is_bottom, log_threshold,
                                      sorted_levels, static_check)
from repro.verification import run_marker


@pytest.fixture(scope="module")
def instance():
    g = random_connected_graph(26, 44, seed=13)
    return g, run_marker(g)


def fresh_labels(marker):
    return {v: dict(regs) for v, regs in marker.labels.items()}


def failures(graph, labels):
    out = {}
    for view in all_views(graph, labels):
        bad = static_check(view)
        if bad:
            out[view.node] = bad
    return out


class TestCompleteness:
    def test_marker_labels_pass(self, instance):
        g, marker = instance
        assert failures(g, marker.labels) == {}

    @pytest.mark.parametrize("make", [
        lambda: star_graph(17, seed=3),
        lambda: caterpillar_graph(6, 3, seed=4),
        lambda: random_connected_graph(12, 40, seed=5),
    ])
    def test_marker_labels_pass_other_families(self, make):
        g = make()
        marker = run_marker(g)
        assert failures(g, marker.labels) == {}


class TestSoundness:
    """Each targeted corruption must be detected by some node."""

    def _assert_detected(self, instance, mutate):
        g, marker = instance
        labels = fresh_labels(marker)
        mutate(g, labels)
        assert failures(g, labels), "corruption went undetected"

    def test_wrong_parent_pointer(self, instance):
        def mutate(g, labels):
            v = next(u for u in g.nodes()
                     if labels[u][R.REG_PARENT_ID] is not None)
            other = next(u for u in g.neighbors(v)
                         if u != labels[v][R.REG_PARENT_ID])
            labels[v][R.REG_PARENT_ID] = other
        self._assert_detected(instance, mutate)

    def test_wrong_distance(self, instance):
        def mutate(g, labels):
            labels[g.nodes()[5]][R.REG_DIST] += 1
        self._assert_detected(instance, mutate)

    def test_wrong_n(self, instance):
        def mutate(g, labels):
            labels[g.nodes()[0]][R.REG_N] += 1
        self._assert_detected(instance, mutate)

    def test_globally_wrong_n(self, instance):
        def mutate(g, labels):
            for v in g.nodes():
                labels[v][R.REG_N] += 1
        self._assert_detected(instance, mutate)

    def test_wrong_ell(self, instance):
        def mutate(g, labels):
            labels[g.nodes()[3]][R.REG_ELL] += 1
        self._assert_detected(instance, mutate)

    def test_rs0_one_after_zero(self, instance):
        def mutate(g, labels):
            v = next(u for u in g.nodes() if "0" in labels[u][R.REG_ROOTS])
            s = labels[v][R.REG_ROOTS]
            i = s.index("0")
            labels[v][R.REG_ROOTS] = s[:i] + "0" + "1" * (len(s) - i - 1)
        self._assert_detected(instance, mutate)

    def test_rs3_no_singleton(self, instance):
        def mutate(g, labels):
            v = g.nodes()[7]
            s = labels[v][R.REG_ROOTS]
            labels[v][R.REG_ROOTS] = "0" + s[1:]
        self._assert_detected(instance, mutate)

    def test_rs1_wrong_length(self, instance):
        def mutate(g, labels):
            v = g.nodes()[2]
            labels[v][R.REG_ROOTS] = labels[v][R.REG_ROOTS] + "0"
        self._assert_detected(instance, mutate)

    def test_rs5_member_without_parent_fragment(self, instance):
        def mutate(g, labels):
            # make some node a member at a level its parent lacks
            for v in g.nodes():
                s = labels[v][R.REG_ROOTS]
                p = labels[v][R.REG_PARENT_ID]
                if p is None:
                    continue
                ps = labels[p][R.REG_ROOTS]
                for j, c in enumerate(s):
                    if c == "*" and ps[j] == "*":
                        labels[v][R.REG_ROOTS] = s[:j] + "0" + s[j + 1:]
                        return
            pytest.skip("no suitable gap level")
        self._assert_detected(instance, mutate)

    def test_eps_star_mismatch(self, instance):
        def mutate(g, labels):
            v = next(u for u in g.nodes() if "*" in labels[u][R.REG_ENDP])
            s = labels[v][R.REG_ENDP]
            i = s.index("*")
            labels[v][R.REG_ENDP] = s[:i] + "n" + s[i + 1:]
        self._assert_detected(instance, mutate)

    def test_eps_two_endpoints(self, instance):
        def mutate(g, labels):
            # turn a 'none' into a second 'up' inside some fragment
            for v in g.nodes():
                s = labels[v][R.REG_ENDP]
                roots = labels[v][R.REG_ROOTS]
                for j, c in enumerate(s):
                    if c == "n" and roots[j] == "0" \
                            and labels[v][R.REG_PARENT_ID] is not None:
                        labels[v][R.REG_ENDP] = s[:j] + "u" + s[j + 1:]
                        return
            pytest.skip("no suitable member level")
        self._assert_detected(instance, mutate)

    def test_orendp_corruption(self, instance):
        def mutate(g, labels):
            v = g.nodes()[4]
            t = list(labels[v][R.REG_ORENDP])
            t[0] = (t[0] + 1) % 3
            labels[v][R.REG_ORENDP] = tuple(t)
        self._assert_detected(instance, mutate)

    def test_jmask_mismatch(self, instance):
        def mutate(g, labels):
            labels[g.nodes()[6]][R.REG_JMASK] ^= 1
        self._assert_detected(instance, mutate)

    def test_partition_dist_corruption(self, instance):
        def mutate(g, labels):
            v = next(u for u in g.nodes()
                     if labels[u][R.REG_TOP_DIST] > 0)
            labels[v][R.REG_TOP_DIST] += 1
        self._assert_detected(instance, mutate)

    def test_partition_bound_too_large(self, instance):
        def mutate(g, labels):
            n = g.n
            for v in g.nodes():
                labels[v][R.REG_TOP_BOUND] = 100 * log_threshold(n)
        self._assert_detected(instance, mutate)

    def test_piece_count_disagreement(self, instance):
        def mutate(g, labels):
            v = next(u for u in g.nodes()
                     if labels[u][R.REG_PARENT_ID] is not None
                     and labels[labels[u][R.REG_PARENT_ID]][R.REG_TOP_ROOT]
                     == labels[u][R.REG_TOP_ROOT])
            labels[v][R.REG_TOP_COUNT] += 1
        self._assert_detected(instance, mutate)

    def test_malformed_pieces(self, instance):
        def mutate(g, labels):
            labels[g.nodes()[1]][R.REG_PIECES_TOP] = ("garbage",)
        self._assert_detected(instance, mutate)


class TestHelpers:
    def test_log_threshold(self):
        assert log_threshold(1) == 1
        assert log_threshold(2) == 1
        assert log_threshold(3) == 2
        assert log_threshold(16) == 4
        assert log_threshold(17) == 5

    def test_sorted_levels(self):
        assert sorted_levels(0b10110) == [1, 2, 4]
        assert sorted_levels(0) == []

    def test_level_is_bottom(self):
        jmask = 0b10110
        assert level_is_bottom(jmask, 2, 1) is True
        assert level_is_bottom(jmask, 2, 2) is True
        assert level_is_bottom(jmask, 2, 4) is False
        assert level_is_bottom(jmask, 2, 0) is None
