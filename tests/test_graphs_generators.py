"""Unit tests for the workload generators."""

import pytest

from repro.graphs import GraphError
from repro.graphs.generators import (bounded_degree_graph, caterpillar_graph,
                                     complete_graph, grid_graph, path_graph,
                                     random_connected_graph,
                                     random_geometric_graph, random_tree,
                                     ring_graph, star_graph)

ALL_GENERATORS = [
    ("path", lambda: path_graph(12, seed=1)),
    ("ring", lambda: ring_graph(12, seed=1)),
    ("star", lambda: star_graph(12, seed=1)),
    ("complete", lambda: complete_graph(8, seed=1)),
    ("grid", lambda: grid_graph(3, 4, seed=1)),
    ("tree", lambda: random_tree(12, seed=1)),
    ("caterpillar", lambda: caterpillar_graph(5, 3, seed=1)),
    ("random", lambda: random_connected_graph(12, 20, seed=1)),
    ("geometric", lambda: random_geometric_graph(12, 0.35, seed=1)),
    ("bounded", lambda: bounded_degree_graph(12, 4, seed=1)),
]


@pytest.mark.parametrize("name,make", ALL_GENERATORS)
def test_generators_connected_and_distinct(name, make):
    g = make()
    assert g.is_connected(), name
    assert g.has_distinct_weights(), name
    assert g.n >= 8


def test_path_sizes():
    g = path_graph(10)
    assert g.n == 10 and g.m == 9


def test_ring_sizes():
    g = ring_graph(10)
    assert g.n == 10 and g.m == 10
    with pytest.raises(GraphError):
        ring_graph(2)


def test_star_degree():
    g = star_graph(9)
    assert g.degree(0) == 8
    assert g.max_degree() == 8


def test_complete_edge_count():
    g = complete_graph(7)
    assert g.m == 21


def test_grid_degree_bound():
    g = grid_graph(4, 5)
    assert g.max_degree() <= 4
    assert g.n == 20


def test_random_tree_is_tree():
    g = random_tree(15, seed=3)
    assert g.m == g.n - 1


def test_caterpillar_shape():
    g = caterpillar_graph(4, 2, seed=0)
    assert g.n == 4 + 8
    assert g.m == g.n - 1


def test_random_connected_extra_edges():
    g = random_connected_graph(15, 10, seed=5)
    assert g.m == 14 + 10


def test_random_connected_caps_extras():
    g = random_connected_graph(5, 100, seed=5)
    assert g.m == 5 * 4 // 2


def test_bounded_degree_respects_cap():
    for seed in range(3):
        g = bounded_degree_graph(30, 3, seed=seed)
        assert g.max_degree() <= 3
        assert g.is_connected()


def test_bounded_degree_rejects_degree_one():
    with pytest.raises(GraphError):
        bounded_degree_graph(5, 1)


def test_determinism():
    a = random_connected_graph(20, 15, seed=42)
    b = random_connected_graph(20, 15, seed=42)
    assert list(a.edges()) == list(b.edges())


def test_non_distinct_option():
    g = random_connected_graph(30, 60, seed=1, distinct=False)
    assert g.is_connected()
