"""Unit tests for the campaign engine: specs, grids, seed derivation,
registries, the runner's error containment, and result aggregation."""

import pytest

from repro.engine import (Axis, CampaignRunner, ScenarioSpec, axis,
                          derive_seed, grid, register_topology,
                          run_campaign, run_scenario, smoke_campaign,
                          spec_is_satisfiable, TOPOLOGIES)
from repro.engine.scenarios import _graph_for
from repro.graphs.generators import ring_graph


class TestSpec:
    def test_axis_is_hashable_and_ordered(self):
        a = axis("random", n=10, extra=6)
        b = axis("random", extra=6, n=10)
        assert a == b and hash(a) == hash(b)
        assert str(a) == "random(extra=6,n=10)"

    def test_seed_derivation_is_stable(self):
        # pinned value: the derivation must never drift between releases,
        # or every recorded campaign stops being reproducible
        assert derive_seed(0, "x") == derive_seed(0, "x")
        assert derive_seed(0, "x") != derive_seed(0, "y")
        assert derive_seed(0, "x") != derive_seed(1, "x")
        assert derive_seed(7, "a", "b") == 313621606696127404

    def test_spec_role_seeds_differ(self):
        spec = ScenarioSpec(topology=axis("path", n=8), seed=3)
        assert spec.derived_seed("topology") != spec.derived_seed("fault")

    def test_grid_expansion_and_seeding(self):
        specs = grid(
            topologies=[axis("path", n=8), axis("ring", n=8)],
            faults=[axis("none"), axis("corrupt")],
            schedules=[axis("sync")],
            seed=5)
        assert len(specs) == 4
        assert len({s.seed for s in specs}) == 4
        # seeds key off the scenario identity, not its grid position:
        # re-expanding with more axis values keeps existing seeds
        wider = grid(
            topologies=[axis("path", n=8), axis("ring", n=8),
                        axis("star", n=8)],
            faults=[axis("none"), axis("corrupt")],
            schedules=[axis("sync")],
            seed=5)
        by_key = {s.key: s.seed for s in wider}
        for s in specs:
            assert by_key[s.key] == s.seed

    def test_topology_seed_pairs_instances(self):
        """Paired comparisons (E6b): specs differing only in protocol
        share one explicit topology_seed and hence one graph instance."""
        from repro.engine import graph_for, memory_campaign
        specs = memory_campaign([16], seed=5)
        assert len(specs) == 2
        assert specs[0].seed != specs[1].seed
        assert graph_for(specs[0]) is graph_for(specs[1])

    def test_satisfiability_filter(self):
        ok = ScenarioSpec(topology=axis("random", n=10),
                          fault=axis("label_swap"))
        tree = ScenarioSpec(topology=axis("star", n=10),
                            fault=axis("label_swap"))
        assert spec_is_satisfiable(ok)
        assert not spec_is_satisfiable(tree)


class TestRegistries:
    def test_register_custom_topology(self):
        name = "ring_doubled_for_test"
        register_topology(name, lambda seed, n=6: ring_graph(2 * n,
                                                             seed=seed))
        try:
            spec = ScenarioSpec(topology=axis(name, n=5),
                                fault=axis("corrupt", count=1),
                                completeness_rounds=50, max_rounds=2000)
            result = run_scenario(spec)
            assert result.n == 10
            assert result.ok, result.violation
        finally:
            TOPOLOGIES.pop(name)
            _graph_for.cache_clear()

    def test_unknown_kind_raises(self):
        from repro.engine import ScenarioError
        with pytest.raises(ScenarioError):
            run_scenario(ScenarioSpec(topology=axis("klein_bottle")))


class TestRunner:
    def test_errors_are_contained_per_scenario(self):
        specs = [
            ScenarioSpec(topology=axis("path", n=6),
                         completeness_rounds=40),
            ScenarioSpec(topology=axis("no_such_family")),
        ]
        result = run_campaign(specs, workers=1)
        assert len(result) == 2
        assert result[0].ok
        assert result[1].error is not None
        assert len(result.errors()) == 1
        assert len(result.violations()) == 1

    def test_parallel_matches_sequential(self):
        specs = smoke_campaign(seed=3)
        seq = CampaignRunner(workers=1).run(specs)
        par = CampaignRunner(workers=2).run(specs)
        assert len(seq) == len(par)
        for a, b in zip(seq, par):
            assert a.spec == b.spec
            assert a.detected == b.detected
            assert a.rounds_to_detection == b.rounds_to_detection
            assert a.max_memory_bits == b.max_memory_bits

    def test_aggregation_and_summary(self):
        result = run_campaign(smoke_campaign(seed=1), workers=1)
        assert not result.violations(), result.summary()
        groups = result.by("fault")
        assert set(groups) == {"none", "corrupt(count=1,fraction=0.6)",
                               "label_swap"}
        text = result.summary()
        assert "scenarios" in text and "violation" in text
        rows = result.rows("n", "detected")
        assert len(rows) == len(result)


class TestScenarioSemantics:
    def test_completeness_scenario_runs_full_budget(self):
        res = run_scenario(ScenarioSpec(topology=axis("path", n=6),
                                        completeness_rounds=64))
        assert not res.detected
        assert res.rounds_run == 64
        assert not res.expected_detection
        assert res.ok

    def test_injection_scenario_reports_distance(self):
        res = run_scenario(ScenarioSpec(
            topology=axis("random", n=12, extra=8),
            fault=axis("scramble", count=1), seed=2, max_rounds=4000))
        assert res.ok, res.violation
        assert res.detected and res.rounds_to_detection is not None
        assert res.faulty_nodes
        assert res.detection_distance is not None

    def test_premature_alarm_is_a_completeness_violation(self):
        """A protocol that alarms during the settle phase must be charged
        to completeness, not silently treated as a detection."""
        from repro.engine.scenarios import ScenarioResult
        r = ScenarioResult(spec=ScenarioSpec(topology=axis("path", n=4)),
                           expected_detection=True, detected=True,
                           premature_alarm=True)
        assert r.violation == "completeness"


class TestCampaignPersistence:
    def test_dump_jsonl_round_trips(self, tmp_path):
        import json

        from repro.engine import grid, run_campaign

        specs = grid(topologies=[axis("random", n=10, extra=6)],
                     faults=[axis("none"), axis("corrupt", count=1)],
                     schedules=[axis("sync")], seed=5,
                     completeness_rounds=40, max_rounds=4000)
        result = run_campaign(specs, workers=1)
        out = tmp_path / "results.jsonl"
        written = result.dump_jsonl(str(out))
        assert written == len(specs)
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(records) == len(specs)
        by_key = {(r["key"], r["seed"]) for r in records}
        assert by_key == {(s.key, s.seed) for s in specs}
        for rec, res in zip(records, result):
            assert rec["detected"] == res.detected
            assert rec["rounds_run"] == res.rounds_run
            assert rec["max_memory_bits"] == res.max_memory_bits
            assert rec["violation"] == res.violation

    def test_cli_out_flag_writes_jsonl(self, tmp_path, monkeypatch):
        import json

        from repro.engine.__main__ import main

        out = tmp_path / "smoke.jsonl"
        code = main(["--workers", "1", "--quiet", "--out", str(out)])
        assert code == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert records and all("key" in r and "wall_time" in r
                               for r in records)


class TestStorageAxis:
    def test_storage_parameter_accepted_and_semantic_seed_stable(self):
        """storage/fast_path are implementation parameters: they neither
        error out nor reshuffle the derived seeds."""
        base = ScenarioSpec(topology=axis("random", n=10, extra=6),
                            fault=axis("corrupt", count=1),
                            schedule=axis("sync"), seed=9, max_rounds=4000)
        dict_spec = ScenarioSpec(topology=base.topology, fault=base.fault,
                                 schedule=axis("sync", storage="dict"),
                                 protocol=base.protocol, seed=9,
                                 max_rounds=4000)
        assert base.derived_seed("topology") == \
            dict_spec.derived_seed("topology")
        assert base.semantic_key == dict_spec.semantic_key
        assert base.key != dict_spec.key
        assert run_scenario(dict_spec).ok

    def test_unknown_storage_rejected(self):
        import pytest

        from repro.engine import ScenarioError

        with pytest.raises(ScenarioError, match="storage"):
            run_scenario(ScenarioSpec(
                topology=axis("path", n=6),
                schedule=axis("sync", storage="quantum"),
                completeness_rounds=8))


class TestStructuredErrors:
    def test_error_result_carries_structured_cause(self):
        """Satellite: error_type + a bounded traceback tail, not just
        the last traceback line."""
        specs = [ScenarioSpec(topology=axis("no_such_family"))]
        result = run_campaign(specs, workers=1)
        r = result[0]
        assert r.status == "error"
        assert r.error_type == "ScenarioError"
        assert r.attempts == 1
        assert r.error_trace and len(r.error_trace) <= 8
        assert any("ScenarioError" in line for line in r.error_trace)
        from repro.engine import scenario_record
        rec = scenario_record(r)
        assert rec["status"] == "error"
        assert rec["error_type"] == "ScenarioError"
        assert rec["error_trace"] == list(r.error_trace)

    def test_ok_result_has_clean_status_fields(self):
        res = run_scenario(ScenarioSpec(topology=axis("path", n=6),
                                        completeness_rounds=16))
        assert res.status == "ok"
        assert res.error_type is None and res.error_trace == ()


class TestSpawnSafety:
    def test_spawn_with_runtime_axis_fails_fast(self):
        """Satellite: spawn + runtime-registered axes used to die inside
        the workers with an opaque KeyError; now the runner refuses up
        front, naming the axis and the workarounds."""
        import multiprocessing

        from repro.engine import ScenarioError
        from repro.engine.scenarios import _graph_for

        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("no spawn start method on this platform")
        name = "runtime_only_topology"
        register_topology(name, lambda seed, n=6: ring_graph(n,
                                                             seed=seed))
        try:
            specs = [ScenarioSpec(topology=axis(name, n=5), seed=s,
                                  completeness_rounds=8)
                     for s in range(3)]
            runner = CampaignRunner(workers=2, mp_context="spawn")
            with pytest.raises(ScenarioError) as info:
                runner.run(specs)
            message = str(info.value)
            assert name in message and "spawn" in message
            assert "worker_init" in message and "fork" in message
            # inline execution stays available as the workaround
            result = CampaignRunner(workers=1).run(specs)
            assert all(r.ok for r in result)
        finally:
            TOPOLOGIES.pop(name)
            _graph_for.cache_clear()

    def test_builtin_axes_pass_spawn_check(self):
        from repro.engine import runtime_registered_axes
        assert runtime_registered_axes(smoke_campaign(seed=0)) == {}
