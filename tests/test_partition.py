"""Partitions Top and Bottom (Section 6): classification, Procedure
Merge, splitting, piece distribution, and the Multi_Wave primitive."""

import pytest

from repro.graphs.generators import (caterpillar_graph, complete_graph,
                                     path_graph, random_connected_graph,
                                     star_graph)
from repro.labels.wellforming import log_threshold
from repro.mst import run_sync_mst
from repro.partition import (build_partitions, check_red_blue_partition,
                             classify_fragments, merge_procedure, piece_of,
                             run_multi_wave, top_ancestors_chain)

FAMILIES = [
    lambda: random_connected_graph(40, 70, seed=1),
    lambda: random_connected_graph(24, 24, seed=2),
    lambda: path_graph(33, seed=3),
    lambda: star_graph(21, seed=4),
    lambda: caterpillar_graph(7, 3, seed=5),
    lambda: complete_graph(12, seed=6),
]


@pytest.fixture(scope="module", params=range(len(FAMILIES)))
def case(request):
    g = FAMILIES[request.param]()
    result = run_sync_mst(g)
    return g, result.hierarchy


class TestClassification:
    def test_top_fragments_upward_closed(self, case):
        _g, hierarchy = case
        classes = classify_fragments(hierarchy)
        for frag in classes.top:
            if frag.parent is not None:
                assert frag.parent in classes.top

    def test_whole_tree_is_top(self, case):
        _g, hierarchy = case
        classes = classify_fragments(hierarchy)
        assert hierarchy.whole_tree_fragment in classes.top

    def test_size_threshold(self, case):
        g, hierarchy = case
        classes = classify_fragments(hierarchy)
        threshold = log_threshold(g.n)
        for frag in classes.top:
            assert frag.size >= threshold
        for frag in classes.bottom:
            assert frag.size < threshold

    def test_red_blue_partition(self, case):
        """Observation 6.1."""
        _g, hierarchy = case
        classes = classify_fragments(hierarchy)
        assert check_red_blue_partition(hierarchy, classes)

    def test_red_are_leaves_of_ttop(self, case):
        _g, hierarchy = case
        classes = classify_fragments(hierarchy)
        for red in classes.red:
            assert not any(c in classes.top for c in red.children)
        for large in classes.large:
            assert any(c in classes.top for c in large.children)

    def test_top_ancestors_chain_sorted(self, case):
        _g, hierarchy = case
        classes = classify_fragments(hierarchy)
        for red in classes.red:
            chain = top_ancestors_chain(classes, red)
            levels = [f.level for f in chain]
            assert levels == sorted(levels)
            assert chain[-1] is hierarchy.whole_tree_fragment


class TestMergeProcedure:
    def test_parts_cover_all_nodes_once(self, case):
        g, hierarchy = case
        classes = classify_fragments(hierarchy)
        parts = merge_procedure(hierarchy, classes)
        seen = {}
        for part in parts:
            for v in part.nodes:
                seen[v] = seen.get(v, 0) + 1
        assert seen == {v: 1 for v in g.nodes()}

    def test_one_red_per_part(self, case):
        _g, hierarchy = case
        classes = classify_fragments(hierarchy)
        parts = merge_procedure(hierarchy, classes)
        assert len(parts) == len(classes.red)
        for part in parts:
            assert part.red.nodes <= part.nodes

    def test_parts_are_subtrees(self, case):
        _g, hierarchy = case
        classes = classify_fragments(hierarchy)
        for part in merge_procedure(hierarchy, classes):
            nodes = part.nodes
            root = min(nodes, key=lambda v: hierarchy.tree.depth[v])
            for v in nodes:
                if v != root:
                    assert hierarchy.tree.parent[v] in nodes


class TestFullLayout:
    def test_claim_6_3_one_top_fragment_per_level(self, case):
        _g, hierarchy = case
        layout = build_partitions(hierarchy)
        for part in layout.top_parts:
            levels = [lvl for _r, lvl, _w in part.pieces]
            assert len(levels) == len(set(levels))

    def test_lemma_6_4_top_part_shape(self, case):
        g, hierarchy = case
        layout = build_partitions(hierarchy)
        threshold = layout.classes.threshold
        for part in layout.top_parts:
            if g.n >= threshold:
                assert part.size >= threshold
            assert part.height <= 3 * threshold
            assert len(part.pieces) <= threshold + 2

    def test_lemma_6_5_bottom_part_shape(self, case):
        _g, hierarchy = case
        layout = build_partitions(hierarchy)
        threshold = layout.classes.threshold
        for part in layout.bottom_parts:
            assert part.size <= max(1, threshold - 1) or part.size == 1
            assert len(part.pieces) <= 2 * part.size

    def test_every_node_in_both_partitions(self, case):
        g, hierarchy = case
        layout = build_partitions(hierarchy)
        assert set(layout.top_part_of) == set(g.nodes())
        assert set(layout.bottom_part_of) == set(g.nodes())

    def test_piece_pairs_at_most_two_per_node(self, case):
        g, hierarchy = case
        layout = build_partitions(hierarchy)
        for v in g.nodes():
            assert len(layout.node_pieces_top.get(v, ())) <= 2
            assert len(layout.node_pieces_bot.get(v, ())) <= 2

    def test_every_fragment_piece_reachable(self, case):
        """The _sanity_check invariant, asserted independently: each
        fragment's piece is stored in the relevant part of each member."""
        _g, hierarchy = case
        layout = build_partitions(hierarchy)
        for frag in hierarchy.fragments:
            expected = piece_of(frag)
            part_of = (layout.top_part_of
                       if frag in layout.classes.top
                       else layout.bottom_part_of)
            for v in frag.nodes:
                assert expected in part_of[v].pieces

    def test_pieces_sorted_by_level_root(self, case):
        _g, hierarchy = case
        layout = build_partitions(hierarchy)
        for part in layout.top_parts + layout.bottom_parts:
            keys = [(lvl, r) for r, lvl, _w in part.pieces]
            assert keys == sorted(keys)

    def test_delim_is_bottom_prefix(self, case):
        g, hierarchy = case
        layout = build_partitions(hierarchy)
        for v in g.nodes():
            frags = hierarchy.fragments_of(v)
            bottoms = [f in layout.classes.bottom for f in frags]
            # bottom fragments form a prefix of the nested chain
            assert bottoms == sorted(bottoms, reverse=True)
            assert layout.delim[v] == sum(bottoms)


class TestMultiWave:
    def test_visits_every_fragment_in_level_order(self, case):
        _g, hierarchy = case
        seen = []
        run_multi_wave(hierarchy, on_fragment=seen.append)
        assert len(seen) == len(hierarchy.fragments)
        levels = [f.level for f in seen]
        assert levels == sorted(levels)

    def test_pipelined_beats_naive(self, case):
        g, hierarchy = case
        res = run_multi_wave(hierarchy)
        assert res.pipelined_time <= res.naive_time

    def test_pipelined_linear(self, case):
        g, hierarchy = case
        res = run_multi_wave(hierarchy)
        assert res.pipelined_time <= 8 * g.n + 16
