"""Property-based tests of the verifier's two defining properties.

Completeness: the marker's labels are never rejected on any graph.
Soundness: the strongest consistent adversary (a legally labeled
non-MST) is always rejected, and the alarm is a minimality check.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graphs import kruskal_mst
from repro.graphs.generators import random_connected_graph
from repro.verification import (labels_for_claimed_tree, run_completeness,
                                run_reject_instance, swap_one_mst_edge)

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


@settings(max_examples=8, **COMMON)
@given(st.integers(min_value=4, max_value=16),
       st.integers(min_value=2, max_value=14),
       st.integers(min_value=0, max_value=2000))
def test_property_completeness(n, extra, seed):
    g = random_connected_graph(n, extra, seed=seed)
    res = run_completeness(g, rounds=450, synchronous=True, static_every=2)
    assert not res.detected, res.alarms


@settings(max_examples=8, **COMMON)
@given(st.integers(min_value=5, max_value=16),
       st.integers(min_value=2, max_value=14),
       st.integers(min_value=0, max_value=2000))
def test_property_soundness_non_mst(n, extra, seed):
    g = random_connected_graph(n, extra, seed=seed)
    wrong = swap_one_mst_edge(g, kruskal_mst(g))
    if wrong is None:
        return  # the instance is a tree: every spanning tree is the MST
    adv = labels_for_claimed_tree(g, wrong)
    res = run_reject_instance(g, adv.labels, synchronous=True,
                              max_rounds=8000, static_every=2)
    assert res.detected
    assert any("C1" in r or "C2" in r or "AGREE" in r
               for r in res.alarms.values()), res.alarms


@settings(max_examples=6, **COMMON)
@given(st.integers(min_value=5, max_value=12),
       st.integers(min_value=2, max_value=10),
       st.integers(min_value=0, max_value=1000),
       st.integers(min_value=0, max_value=10 ** 6))
def test_property_random_corruption_detected(n, extra, seed, fault_seed):
    from repro.verification import run_detection

    g = random_connected_graph(n, extra, seed=seed)

    def inject(net, inj):
        inj.corrupt_random_nodes(1, fraction=0.6)

    res = run_detection(g, inject, synchronous=True, max_rounds=8000,
                        seed=fault_seed, static_every=1)
    assert res.detected
