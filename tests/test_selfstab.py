"""The transformer and the self-stabilizing MST (Section 10)."""

import random

import pytest

from repro.graphs import kruskal_mst
from repro.graphs.generators import path_graph, random_connected_graph
from repro.selfstab import (ResetWaveProtocol, Resynchronizer,
                            current_output_edges, mst_checker,
                            run_self_stabilizing_mst, REG_RESET_EPOCH)
from repro.sim import Network, SynchronousScheduler


class TestResetWave:
    def test_wave_clears_everything(self):
        g = path_graph(8, seed=1)
        net = Network(g)
        net.install({v: {"junk": v * 3, "_ghost": 1} for v in g.nodes()})
        # the initiator clears itself when bumping the epoch (as the
        # Resynchronizer does); the wave clears everyone else
        net.registers[0] = {REG_RESET_EPOCH: 5, "_ghost": 1}
        sched = SynchronousScheduler(net, ResetWaveProtocol())
        sched.run(g.n + 1)
        for v in g.nodes():
            assert "junk" not in net.registers[v], v
            assert net.registers[v][REG_RESET_EPOCH] == 5
            assert net.registers[v].get("_ghost", 1) == 1  # ghosts survive

    def test_wave_needs_diameter_rounds(self):
        g = path_graph(10, seed=2)
        net = Network(g)
        net.install({v: {"junk": 1} for v in g.nodes()})
        net.registers[0][REG_RESET_EPOCH] = 3
        sched = SynchronousScheduler(net, ResetWaveProtocol())
        sched.run(3)
        assert "junk" in net.registers[9]
        sched.run(g.n)
        assert "junk" not in net.registers[9]


class TestSelfStabilizingMst:
    def test_cold_start(self):
        g = random_connected_graph(16, 26, seed=1)
        res = run_self_stabilizing_mst(g, synchronous=True)
        assert res.correct
        assert res.edges == kruskal_mst(g)
        assert res.trace.reset_waves >= 1

    def test_garbage_start(self):
        g = random_connected_graph(14, 22, seed=2)
        rng = random.Random(0)
        garbage = {
            v: {"pid": rng.randrange(14), "roots": "1*x", "n": 999,
                "tt_bbuf": 3}
            for v in g.nodes()
        }
        res = run_self_stabilizing_mst(g, synchronous=True,
                                       initial_state=garbage)
        assert res.correct

    def test_correct_start_stays_silent(self):
        """Starting from the marker's labels: verified silently, no reset."""
        from repro.verification import run_marker
        g = random_connected_graph(14, 22, seed=3)
        marker = run_marker(g)
        res = run_self_stabilizing_mst(g, synchronous=True,
                                       initial_state=marker.labels)
        assert res.correct
        assert res.trace.reset_waves == 0

    def test_memory_logarithmic(self):
        g = random_connected_graph(20, 32, seed=4)
        res = run_self_stabilizing_mst(g, synchronous=True)
        import math
        # a generous constant times log n bits
        assert res.max_memory_bits <= 80 * math.ceil(math.log2(g.n)) + 200

    def test_output_registers_hold_the_mst(self):
        g = random_connected_graph(12, 18, seed=5)
        res = run_self_stabilizing_mst(g, synchronous=True)
        assert res.edges == kruskal_mst(g)

    def test_post_stabilization_fault_recovery(self):
        """A fault after stabilization is detected and repaired."""
        from repro.sim.faults import FaultInjector
        from repro.trains.budgets import compute_budgets

        g = random_connected_graph(12, 18, seed=6)
        net = Network(g)
        checker = mst_checker(synchronous=True)
        resync = Resynchronizer(net, checker, synchronous=True)
        budgets = compute_budgets(g.n, True, degree=g.max_degree())
        resync.run_until_stable(2 * budgets.ask_alarm)
        assert current_output_edges(net) == kruskal_mst(g)

        inj = FaultInjector(net, seed=1)
        inj.corrupt_node(g.nodes()[4], fraction=0.6)
        trace = resync.run_until_stable(2 * budgets.ask_alarm)
        assert current_output_edges(net) == kruskal_mst(g)
        assert trace.detections  # the fault was actually detected


class TestResynchronizerAccounting:
    def test_trace_counts(self):
        g = random_connected_graph(10, 14, seed=7)
        res = run_self_stabilizing_mst(g, synchronous=True)
        t = res.trace
        assert t.total_rounds >= t.verification_rounds
        assert t.construction_rounds > 0
        assert t.reset_waves == 1

    def test_stabilization_time_linear_shape(self):
        """Theorem 10.2: O(n) stabilization — construction dominates and
        grows linearly; the verification window is polylog."""
        totals = {}
        for n in (16, 64):
            g = random_connected_graph(n, 2 * n, seed=8)
            res = run_self_stabilizing_mst(g, synchronous=True)
            totals[n] = res.trace.construction_rounds
        assert totals[64] <= 8 * totals[16]
        assert totals[64] >= 2 * totals[16]
