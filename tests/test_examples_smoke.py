"""Smoke tests: the example scripts run to completion.

Only the fast examples run in the suite; the longer demos
(`self_stabilization.py`, `fault_locality.py`, `async_vs_sync.py`) are
exercised by CI-style manual runs and the benchmark suite covers their
content.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SRC = Path(__file__).resolve().parent.parent / "src"


def run_example(name: str, timeout: int = 240) -> str:
    # the examples import `repro`; pytest's own `pythonpath` setting does
    # not reach subprocesses, so pass it explicitly
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout, env=env)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "no alarms" in out
    assert "detected after" in out


def test_paper_figure1_runs():
    out = run_example("paper_figure1.py")
    assert "18/18" in out
    assert "Or-EndP" in out


def test_comparison_walkthrough_runs():
    out = run_example("comparison_walkthrough.py")
    assert "no alarms" in out
