"""Section 9: the subdivision transformation and the Lemma 9.1 reduction."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import kruskal_mst
from repro.graphs.generators import complete_graph, random_connected_graph
from repro.lowerbound import (lemma_9_1, lift_tree, minimum_tau_for_memory,
                              subdivide, transformation_preserves_mst)
from repro.verification import swap_one_mst_edge


class TestSubdivide:
    def test_node_and_edge_counts(self):
        g = random_connected_graph(8, 6, seed=1)
        tau = 3
        sub = subdivide(g, tau)
        assert sub.graph.n == g.n + g.m * 2 * tau
        assert sub.graph.m == g.m * (2 * tau + 1)

    def test_path_weights(self):
        g = complete_graph(4, seed=2)
        mst = kruskal_mst(g)
        sub = subdivide(g, 2, tree_edges=mst)
        for base, chain in sub.path_nodes.items():
            weights = [sub.graph.weight(a, b)
                       for a, b in zip(chain, chain[1:])]
            w = g.weight(*base)
            assert sorted(weights)[-1] == max(w, 1)
            assert weights.count(1) >= len(weights) - 1

    def test_weight_edge_position(self):
        g = complete_graph(4, seed=3)
        mst = kruskal_mst(g)
        sub = subdivide(g, 2, tree_edges=mst)
        for base, chain in sub.path_nodes.items():
            links = list(zip(chain, chain[1:]))
            we = sub.weight_edge[base]
            idx = next(i for i, (a, b) in enumerate(links)
                       if frozenset((a, b)) == frozenset(we))
            if base in mst:
                assert idx == len(links) - 1   # Figure 10: the last edge
            else:
                assert idx == len(links) // 2  # the excluded middle link

    def test_tau_must_be_positive(self):
        g = complete_graph(3, seed=0)
        with pytest.raises(Exception):
            subdivide(g, 0)


class TestLift:
    def test_lift_is_spanning_tree(self):
        from repro.graphs.spanning import is_spanning_tree
        g = random_connected_graph(10, 12, seed=4)
        mst = kruskal_mst(g)
        sub = subdivide(g, 2, tree_edges=mst)
        lifted = lift_tree(sub, mst)
        assert is_spanning_tree(sub.graph, lifted)

    @pytest.mark.parametrize("seed", range(4))
    def test_preserves_mst_both_ways(self, seed):
        g = random_connected_graph(12, 18, seed=seed)
        mst = kruskal_mst(g)
        assert transformation_preserves_mst(g, 2, mst)
        wrong = swap_one_mst_edge(g, mst)
        if wrong is not None:
            assert transformation_preserves_mst(g, 2, wrong)


class TestLemma91:
    def test_label_packing_arithmetic(self):
        bound = lemma_9_1(n=1024, tau=3, memory_bits=20)
        assert bound.simulated_label_bits == 7 * 20

    def test_logn_memory_needs_log_time(self):
        """The headline: with Theta(log n) bits, tau = Omega(log n)."""
        taus = {}
        for n in (2 ** 8, 2 ** 12, 2 ** 16):
            mem = math.ceil(math.log2(n))
            taus[n] = minimum_tau_for_memory(n, mem)
        assert taus[2 ** 16] > taus[2 ** 8]
        # tau grows ~ proportionally with log n at fixed c
        assert taus[2 ** 16] >= 1.5 * taus[2 ** 8]

    def test_sq_log_memory_allows_constant_time(self):
        n = 2 ** 12
        mem = math.ceil(math.log2(n)) ** 2
        assert minimum_tau_for_memory(n, mem) <= 2


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=3, max_value=10),
       st.integers(min_value=0, max_value=8),
       st.integers(min_value=1, max_value=3),
       st.integers(min_value=0, max_value=1000))
def test_property_subdivision_preserves(n, extra, tau, seed):
    g = random_connected_graph(n, extra, seed=seed)
    mst = kruskal_mst(g)
    assert transformation_preserves_mst(g, tau, mst)
    wrong = swap_one_mst_edge(g, mst)
    if wrong is not None:
        assert transformation_preserves_mst(g, tau, wrong)
