"""Verifier completeness: on a correct instance with correct labels no
node ever raises an alarm (first bullet of Section 2.4), across
schedulers, daemons, and comparison modes."""

import pytest

from repro.graphs.generators import (caterpillar_graph, path_graph,
                                     random_connected_graph, star_graph)
from repro.sim import PermutationDaemon, RandomDaemon
from repro.trains.comparison import (MODE_SYNC_WINDOW, MODE_WANT,
                                     MODE_WANT_SIMPLE)
from repro.verification import run_completeness


def rounds_for(n):
    # enough for several full ask rotations at these sizes
    return 900


@pytest.mark.parametrize("make", [
    lambda: random_connected_graph(18, 30, seed=1),
    lambda: path_graph(16, seed=2),
    lambda: star_graph(12, seed=3),
    lambda: caterpillar_graph(4, 2, seed=4),
])
def test_synchronous_silent(make):
    g = make()
    res = run_completeness(g, rounds=rounds_for(g.n), synchronous=True)
    assert not res.detected, res.alarms


def test_asynchronous_want_silent():
    g = random_connected_graph(14, 22, seed=5)
    res = run_completeness(g, rounds=500, synchronous=False,
                           daemon=PermutationDaemon(seed=1))
    assert not res.detected, res.alarms


def test_asynchronous_random_daemon_silent():
    g = random_connected_graph(10, 14, seed=6)
    res = run_completeness(g, rounds=250, synchronous=False,
                           daemon=RandomDaemon(seed=2))
    assert not res.detected, res.alarms


def test_want_simple_mode_silent():
    g = random_connected_graph(10, 14, seed=7)
    res = run_completeness(g, rounds=350, synchronous=False,
                           comparison_mode=MODE_WANT_SIMPLE,
                           daemon=PermutationDaemon(seed=3))
    assert not res.detected, res.alarms


def test_want_mode_under_synchronous_scheduler():
    g = random_connected_graph(12, 18, seed=8)
    res = run_completeness(g, rounds=700, synchronous=True,
                           comparison_mode=MODE_WANT)
    assert not res.detected, res.alarms


def test_memory_stays_logarithmic():
    """Theorem 8.5's O(log n) bits: the per-node register footprint of
    labels + verifier state grows like log n, not log^2 n."""
    import math
    bits = {}
    for n in (16, 64, 256):
        g = random_connected_graph(n, 2 * n, seed=9)
        res = run_completeness(g, rounds=6, synchronous=True)
        bits[n] = res.max_memory_bits
    # quadrupling n must grow memory by far less than the 4x of linear
    # growth and less than the ~2.3x of log^2 growth at these sizes
    assert bits[256] / bits[16] < 2.2
    assert bits[64] >= bits[16] * 0.8  # sanity: it does grow a little


def test_tiny_graphs_silent():
    for n in (2, 3, 4):
        g = path_graph(n, seed=n)
        res = run_completeness(g, rounds=400, synchronous=True)
        assert not res.detected, (n, res.alarms)
