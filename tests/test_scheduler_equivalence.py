"""Differential test: the fast-path synchronous scheduler is bit-for-bit
equivalent to the naive lock-step loop, under both storage backends.

The fast path (dirty-set snapshot + quiescence skip, see
``repro.sim.schedulers``) must produce *identical register traces and
round counts* on every protocol in the repo — whether node state lives
in legacy dicts or in the typed register file (``use_schema``).  We
drive the full MST verifier (never quiescent: the trains patrol
forever) across the full fast_path x storage grid, the Boruvka
construction protocol (quiescent once every node is done — exercises the
skip and the fast-forward; schema-less, so it also pins the legacy path),
and the 1-round PLS verifier (quiescent immediately), through
settle/inject/detect phases.
"""

import pytest

from repro.baselines.pls_sqlog import SqLogPlsProtocol, sqlog_labels
from repro.graphs.generators import random_connected_graph
from repro.mst.boruvka_protocol import BoruvkaProtocol
from repro.sim import FaultInjector, Network, SynchronousScheduler
from repro.verification import make_network
from repro.verification.verifier import MstVerifierProtocol


def run_traced(network, protocol, rounds, fast, use_schema=True):
    """Run and record the full register state after every executed round."""
    sched = SynchronousScheduler(network, protocol, fast_path=fast,
                                 use_schema=use_schema)
    trace = []

    def record(net):
        trace.append({v: dict(r) for v, r in net.registers.items()})
        return False

    executed = sched.run(rounds, stop_when=record)
    return sched, trace, executed


def assert_equivalent(naive_trace, fast_trace):
    """Fast trace must equal the naive one; if the fast path
    fast-forwarded a quiescent tail, the missing entries must all equal
    the last recorded (fixed-point) state."""
    assert len(fast_trace) <= len(naive_trace)
    for i, (a, b) in enumerate(zip(naive_trace, fast_trace)):
        assert a == b, f"trace diverges at round {i}"
    if len(fast_trace) < len(naive_trace):
        fixed_point = fast_trace[-1]
        for i in range(len(fast_trace), len(naive_trace)):
            assert naive_trace[i] == fixed_point, \
                f"naive state changed at round {i} after fast-forward"


class TestVerifierEquivalence:
    """The verifier's registers churn every round (patrolling trains):
    the dirty-set snapshot must still match the full copy exactly."""

    def test_completeness_run(self):
        """fast_path x storage: all four register traces are identical."""
        g = random_connected_graph(24, 40, seed=11)
        traces = {}
        for fast in (False, True):
            for use_schema in (False, True):
                net = make_network(g)
                proto = MstVerifierProtocol(synchronous=True)
                _, trace, executed = run_traced(net, proto, 80, fast,
                                                use_schema)
                traces[(fast, use_schema)] = (trace, executed)
        ref = traces[(False, False)]
        for combo, got in traces.items():
            assert got[1] == ref[1], combo
            assert len(got[0]) == len(ref[0]), combo
            assert_equivalent(ref[0], got[0])

    def test_settle_inject_detect_run(self):
        """Fault injection between run() calls: the fast path re-snapshots
        and must detect in exactly the same round with the same alarms."""
        g = random_connected_graph(20, 34, seed=12)
        outcomes = {}
        for fast in (False, True):
            for use_schema in (False, True):
                net = make_network(g)
                proto = MstVerifierProtocol(synchronous=True)
                sched = SynchronousScheduler(net, proto, fast_path=fast,
                                             use_schema=use_schema)
                sched.run(60)
                inj = FaultInjector(net, seed=5)
                inj.corrupt_random_nodes(2, fraction=0.5)
                trace = []

                def record(n, trace=trace):
                    trace.append({v: dict(r)
                                  for v, r in n.registers.items()})
                    return bool(n.alarms())

                detect_rounds = sched.run(3000, stop_when=record)
                outcomes[(fast, use_schema)] = (detect_rounds, net.alarms(),
                                                trace, sched.rounds)
        ref = outcomes[(False, False)]
        for combo, got in outcomes.items():
            assert got[0] == ref[0], combo
            assert got[1] == ref[1], combo
            assert got[3] == ref[3], combo
            assert_equivalent(ref[2], got[2])


class TestBoruvkaEquivalence:
    """A SYNC_MST-style construction run (the scheduler-driven MST
    protocol): phase clocks keep every node live, so this exercises the
    dirty-set snapshot under full churn on a non-verifier protocol."""

    @pytest.mark.parametrize("seed", [1, 2])
    def test_construction_run(self, seed):
        g = random_connected_graph(18, 30, seed=seed)
        horizon = g.n + 1
        results = {}
        for fast in (False, True):
            net = Network(g)
            proto = BoruvkaProtocol(horizon)
            sched, trace, executed = run_traced(
                net, proto, 2 * horizon * (g.n.bit_length() + 2), fast)
            results[fast] = (trace, executed, sched.rounds,
                            {v: dict(r) for v, r in net.registers.items()})
        assert results[False][1] == results[True][1]
        assert results[False][2] == results[True][2]
        assert results[False][3] == results[True][3]
        assert_equivalent(results[False][0], results[True][0])


class TestQuiescentVerifierEquivalence:
    """The 1-round PLS verifier accepts without writing: the whole
    network is quiescent after the first round."""

    def test_accepting_run_fast_forwards(self):
        g = random_connected_graph(40, 70, seed=13)
        labels = sqlog_labels(g)
        finals = {}
        for fast in (False, True):
            net = Network(g)
            net.install(labels)
            sched = SynchronousScheduler(net, SqLogPlsProtocol(),
                                         fast_path=fast)
            executed = sched.run(500)
            finals[fast] = (executed, sched.rounds, net.alarms(),
                            {v: dict(r) for v, r in net.registers.items()})
        assert finals[False] == finals[True]
        assert not finals[True][2]

    def test_detection_after_quiescence(self):
        """A fault injected into a fast-forwarded network must be caught
        on the next run() exactly as under the naive scheduler."""
        g = random_connected_graph(30, 50, seed=14)
        labels = sqlog_labels(g)
        outcomes = {}
        for fast in (False, True):
            net = Network(g)
            net.install(labels)
            sched = SynchronousScheduler(net, SqLogPlsProtocol(),
                                         fast_path=fast)
            sched.run(50)
            inj = FaultInjector(net, seed=9)
            inj.corrupt_random_nodes(1, fraction=0.8)
            from repro.sim import first_alarm
            rounds = sched.run(50, stop_when=first_alarm)
            outcomes[fast] = (rounds, net.alarms(), sched.rounds)
        assert outcomes[False] == outcomes[True]
        assert outcomes[True][1], "sqlog must detect the corruption"
