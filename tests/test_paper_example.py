"""The Figure-1 / Table-2 anchor: SYNC_MST on the reconstructed instance
must reproduce the paper's example *exactly* — the tree, its orientation,
every active fragment, and all four label strings of Table 2."""

import pytest

from repro.graphs import kruskal_mst
from repro.graphs.paper_example import (ID_TO_NAME, NAME_TO_ID, NODE_NAMES,
                                        TABLE2_ENDP, TABLE2_OR_ENDP,
                                        TABLE2_PARENTS, TABLE2_ROOTS,
                                        build_paper_graph, build_paper_tree,
                                        expected_fragment_sets)
from repro.labels.strings import compute_node_strings, format_table2
from repro.mst import run_sync_mst


@pytest.fixture(scope="module")
def result():
    return run_sync_mst(build_paper_graph())


@pytest.fixture(scope="module")
def strings(result):
    return compute_node_strings(result.hierarchy)


class TestTree:
    def test_is_the_mst(self, result):
        g = build_paper_graph()
        assert result.tree.edge_set() == kruskal_mst(g)

    def test_rooted_at_l(self, result):
        assert ID_TO_NAME[result.tree.root] == "l"

    def test_exact_orientation(self, result):
        expected = build_paper_tree()
        assert result.tree.parent == expected.parent

    def test_height_of_hierarchy(self, result):
        assert result.hierarchy.height == 4


class TestFragments:
    def test_level_zero_singletons(self, result):
        frags = result.hierarchy.by_level(0)
        assert sorted(len(f.nodes) for f in frags) == [1] * 18

    @pytest.mark.parametrize("level", [1, 2, 3, 4])
    def test_active_fragments_match_figure(self, result, level):
        got = sorted((frozenset(f.nodes) for f in
                      result.hierarchy.by_level(level)), key=sorted)
        want = sorted(expected_fragment_sets()[level], key=sorted)
        assert got == want

    def test_dehi_skips_level_one(self, result):
        dehi = frozenset(NAME_TO_ID[c] for c in "dehi")
        levels = [f.level for f in result.hierarchy.fragments
                  if f.nodes == dehi]
        assert levels == [2]

    def test_hierarchy_valid_and_minimal(self, result):
        result.hierarchy.validate()
        assert result.hierarchy.verify_minimality()


class TestTable2:
    @pytest.mark.parametrize("name", list(NODE_NAMES))
    def test_roots_strings(self, strings, name):
        assert strings[NAME_TO_ID[name]].roots == TABLE2_ROOTS[name]

    @pytest.mark.parametrize("name", list(NODE_NAMES))
    def test_endp_strings(self, strings, name):
        assert strings[NAME_TO_ID[name]].endp_display() == TABLE2_ENDP[name]

    @pytest.mark.parametrize("name", list(NODE_NAMES))
    def test_parents_strings(self, strings, name):
        assert strings[NAME_TO_ID[name]].parents == TABLE2_PARENTS[name]

    @pytest.mark.parametrize("name", list(NODE_NAMES))
    def test_or_endp_strings(self, strings, name):
        assert strings[NAME_TO_ID[name]].orendp_display() == \
            TABLE2_OR_ENDP[name]

    def test_format_table_renders(self, strings):
        text = format_table2(strings, names=ID_TO_NAME)
        assert "Roots" in text and "Or-EndP" in text
        assert text.count("\n") > 70
