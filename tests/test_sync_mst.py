"""SYNC_MST (Section 4): correctness, Lemma 4.1, Theorem 4.4."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import GraphError, WeightedGraph, kruskal_mst
from repro.graphs.generators import (caterpillar_graph, complete_graph,
                                     grid_graph, path_graph,
                                     random_connected_graph, ring_graph,
                                     star_graph)
from repro.mst import run_ghs, run_sync_mst, run_boruvka_protocol

FAMILIES = [
    lambda: path_graph(17, seed=2),
    lambda: ring_graph(16, seed=3),
    lambda: star_graph(14, seed=4),
    lambda: complete_graph(10, seed=5),
    lambda: grid_graph(4, 4, seed=6),
    lambda: caterpillar_graph(5, 2, seed=7),
    lambda: random_connected_graph(25, 45, seed=8),
]


@pytest.mark.parametrize("make", FAMILIES)
def test_constructs_the_mst(make):
    g = make()
    result = run_sync_mst(g)
    assert result.tree.edge_set() == kruskal_mst(g)


@pytest.mark.parametrize("make", FAMILIES)
def test_hierarchy_valid_and_minimal(make):
    g = make()
    result = run_sync_mst(g)
    result.hierarchy.validate()
    assert result.hierarchy.verify_minimality()


@pytest.mark.parametrize("make", FAMILIES)
def test_lemma_4_1_fragment_sizes(make):
    """A level-i active fragment has 2^i <= |F| <= 2^(i+1) - 1."""
    g = make()
    result = run_sync_mst(g)
    for frag in result.hierarchy.fragments:
        assert frag.size >= 2 ** frag.level
        if frag.size < g.n:
            assert frag.size <= 2 ** (frag.level + 1) - 1


@pytest.mark.parametrize("make", FAMILIES)
def test_theorem_4_4_linear_time(make):
    """Rounds <= 30 n: the exact charging is (11+4) * 2^(final phase) and
    the final phase has 2^phase <= n."""
    g = make()
    result = run_sync_mst(g)
    assert result.rounds <= 30 * g.n


def test_phase_windows_do_not_overlap():
    g = random_connected_graph(20, 30, seed=9)
    result = run_sync_mst(g)
    for rec in result.trace:
        assert rec.start_round == 11 * 2 ** rec.phase
        assert rec.end_round == 22 * 2 ** rec.phase


def test_hierarchy_height_at_most_log_n():
    for seed in range(4):
        g = random_connected_graph(30, 60, seed=seed)
        result = run_sync_mst(g)
        assert result.hierarchy.height <= max(1, (g.n - 1).bit_length())


def test_all_singletons_at_level_zero():
    g = random_connected_graph(15, 20, seed=1)
    result = run_sync_mst(g)
    singles = [f for f in result.hierarchy.fragments if f.level == 0]
    assert len(singles) == g.n
    assert all(f.size == 1 for f in singles)


def test_single_node_graph():
    g = WeightedGraph()
    g.add_node(5)
    result = run_sync_mst(g)
    assert result.tree.root == 5
    assert result.hierarchy.height == 0


def test_two_node_graph():
    g = WeightedGraph()
    g.add_edge(1, 2, 3)
    result = run_sync_mst(g)
    assert result.tree.edge_set() == {(1, 2)}
    # merge root is the higher identity (the pivot/handshake rule)
    assert result.tree.root == 2


def test_rejects_disconnected():
    g = WeightedGraph()
    g.add_edge(1, 2, 1)
    g.add_node(3)
    with pytest.raises(GraphError):
        run_sync_mst(g)


def test_rejects_duplicate_weights():
    g = WeightedGraph()
    g.add_edge(1, 2, 1)
    g.add_edge(2, 3, 1)
    with pytest.raises(GraphError):
        run_sync_mst(g)


def test_candidate_edges_are_minimum_outgoing():
    g = random_connected_graph(20, 35, seed=10)
    result = run_sync_mst(g)
    from repro.hierarchy import minimum_outgoing_edge
    for frag in result.hierarchy.fragments:
        if frag.candidate_edge is None:
            assert frag.size == g.n
            continue
        moe = minimum_outgoing_edge(g, frag.nodes)
        assert frag.candidate_weight == moe[2]


class TestGhsBaseline:
    @pytest.mark.parametrize("seed", range(4))
    def test_ghs_correct(self, seed):
        g = random_connected_graph(22, 40, seed=seed)
        assert run_ghs(g).edges == kruskal_mst(g)

    def test_ghs_uses_levels(self):
        g = random_connected_graph(30, 50, seed=2)
        assert run_ghs(g).levels_used >= 1

    def test_time_grows_superlinearly_vs_sync(self):
        """GHS pays the log factor; SYNC_MST stays linear."""
        small, large = 16, 128
        g1 = random_connected_graph(small, small * 2, seed=3)
        g2 = random_connected_graph(large, large * 2, seed=3)
        ghs_growth = run_ghs(g2).time / run_ghs(g1).time
        sync_growth = run_sync_mst(g2).rounds / run_sync_mst(g1).rounds
        assert ghs_growth > sync_growth * 0.9


class TestBoruvkaProtocol:
    @pytest.mark.parametrize("seed", range(3))
    def test_register_level_protocol_correct(self, seed):
        g = random_connected_graph(16, 24, seed=seed)
        edges, rounds = run_boruvka_protocol(g)
        assert edges == kruskal_mst(g)
        assert rounds > 0

    def test_single_node(self):
        g = WeightedGraph()
        g.add_node(0)
        edges, _ = run_boruvka_protocol(g)
        assert edges == set()


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=24),
       st.integers(min_value=0, max_value=30),
       st.integers(min_value=0, max_value=10_000))
def test_property_sync_mst_matches_kruskal(n, extra, seed):
    g = random_connected_graph(n, extra, seed=seed)
    result = run_sync_mst(g)
    assert result.tree.edge_set() == kruskal_mst(g)
    result.hierarchy.validate()
    assert result.hierarchy.verify_minimality()
