"""Baselines: the O(log^2 n) 1-PLS, recompute checking, the cycle-rule
low-memory algorithm, and the Table-1 models."""

import math

import pytest

from repro.graphs import kruskal_mst
from repro.graphs.generators import random_connected_graph
from repro.baselines import (HISTORICAL_ROWS, SqLogPlsProtocol,
                             evaluate_rows, recompute_checker_metrics,
                             recompute_detect, run_low_memory_mst,
                             sqlog_labels, sqlog_marker_output)
from repro.sim import FaultInjector, Network, SynchronousScheduler, first_alarm
from repro.verification import (labels_for_claimed_tree, run_marker,
                                swap_one_mst_edge)
from repro.verification.adversary import tree_only_subgraph


def sqlog_network(g, labels):
    net = Network(g)
    net.install(labels)
    return net


class TestSqLogPls:
    def test_accepts_correct(self):
        g = random_connected_graph(20, 34, seed=1)
        net = sqlog_network(g, sqlog_labels(g))
        rounds = SynchronousScheduler(net, SqLogPlsProtocol()).run(
            3, stop_when=first_alarm)
        assert not net.alarms()

    def test_detects_in_one_round(self):
        g = random_connected_graph(20, 34, seed=2)
        net = sqlog_network(g, sqlog_labels(g))
        inj = FaultInjector(net, seed=1)
        inj.corrupt_random_nodes(1, fraction=0.6)
        rounds = SynchronousScheduler(net, SqLogPlsProtocol()).run(
            5, stop_when=first_alarm)
        assert net.alarms()
        assert rounds == 1

    def test_rejects_non_mst_in_one_round(self):
        from repro.graphs.spanning import RootedTree
        from repro.hierarchy.fragments import Fragment, Hierarchy
        from repro.mst import run_sync_mst

        g = random_connected_graph(18, 30, seed=3)
        wrong = swap_one_mst_edge(g, kruskal_mst(g))
        sub = tree_only_subgraph(g, wrong)
        res = run_sync_mst(sub)
        tree = RootedTree(g, res.tree.root, res.tree.parent)
        hierarchy = Hierarchy(tree, [
            Fragment(root=f.root, level=f.level, nodes=f.nodes,
                     candidate_edge=f.candidate_edge,
                     candidate_weight=f.candidate_weight)
            for f in res.hierarchy.fragments])
        net = sqlog_network(g, sqlog_labels(g, hierarchy))
        rounds = SynchronousScheduler(net, SqLogPlsProtocol()).run(
            3, stop_when=first_alarm)
        assert net.alarms()
        assert rounds == 1
        assert any("C2" in r or "C1" in r for r in net.alarms().values())

    def test_memory_is_log_squared_shape(self):
        """The sqlog scheme's memory grows faster than the train scheme's."""
        from repro.verification import make_network
        ratios = {}
        for n in (16, 256):
            g = random_connected_graph(n, 2 * n, seed=4)
            sq = sqlog_network(g, sqlog_labels(g)).max_memory_bits()
            kkm = make_network(g, run_marker(g)).max_memory_bits()
            ratios[n] = sq / kkm
        # with more levels per node, the piece table grows relative to
        # the O(log n) label set
        assert ratios[256] > ratios[16]

    def test_marker_output_interface(self):
        g = random_connected_graph(12, 18, seed=5)
        labels, rounds = sqlog_marker_output(g)
        assert set(labels) == set(g.nodes())
        assert rounds > 0


class TestRecompute:
    def test_silent_on_correct(self):
        g = random_connected_graph(16, 26, seed=6)
        net = Network(g)
        net.install(run_marker(g).labels)
        rounds, alarms = recompute_detect(net)
        assert not alarms
        assert rounds > 0

    def test_detects_wrong_component(self):
        g = random_connected_graph(16, 26, seed=7)
        marker = run_marker(g)
        net = Network(g)
        net.install(marker.labels)
        victim = next(v for v in g.nodes()
                      if marker.labels[v]["pid"] is not None)
        wrong = next(u for u in g.neighbors(victim)
                     if u != marker.labels[victim]["pid"]
                     and frozenset((victim, u)) not in
                     {frozenset(e) for e in marker.tree.edge_set()})
        net.registers[victim]["pid"] = wrong
        _rounds, alarms = recompute_detect(net)
        assert victim in alarms

    def test_detection_time_linear(self):
        times = {}
        for n in (16, 128):
            g = random_connected_graph(n, 2 * n, seed=8)
            times[n] = recompute_checker_metrics(g)["detection_rounds"]
        assert times[128] >= 4 * times[16]


class TestLowMemory:
    @pytest.mark.parametrize("seed", range(3))
    def test_reaches_the_mst(self, seed):
        g = random_connected_graph(18, 36, seed=seed)
        res = run_low_memory_mst(g)
        assert res.edges == kruskal_mst(g)

    def test_rounds_grow_with_edges(self):
        g_sparse = random_connected_graph(24, 10, seed=9)
        g_dense = random_connected_graph(24, 150, seed=9)
        sparse = run_low_memory_mst(g_sparse).rounds
        dense = run_low_memory_mst(g_dense).rounds
        assert dense > sparse

    def test_memory_logarithmic(self):
        g = random_connected_graph(30, 60, seed=10)
        res = run_low_memory_mst(g)
        assert res.memory_bits <= 4 * math.ceil(math.log2(g.n)) + 16

    def test_already_minimal_makes_no_swaps(self):
        g = random_connected_graph(15, 25, seed=11)
        res = run_low_memory_mst(g, initial=kruskal_mst(g))
        assert res.swaps == 0


class TestTable1Models:
    def test_rows_evaluate(self):
        rows = evaluate_rows(n=256, m=1024)
        assert len(rows) == len(HISTORICAL_ROWS)
        byname = {r["name"]: r for r in rows}
        kkm = next(r for r in rows if "Current paper" in r["name"])
        hl = next(r for r in rows if "Higham" in r["name"])
        assert kkm["time_rounds"] < hl["time_rounds"]
        assert kkm["space_bits"] <= hl["space_bits"] + 1

    def test_kkm_dominates_all_rows(self):
        rows = evaluate_rows(n=1024, m=8192)
        kkm = next(r for r in rows if "Current paper" in r["name"])
        for row in rows:
            if row is kkm:
                continue
            assert kkm["space_bits"] <= row["space_bits"] * 1.01
            if abs(row["space_bits"] - kkm["space_bits"]) < 1:
                # equal-memory rows are strictly slower
                assert kkm["time_rounds"] < row["time_rounds"]
