"""Numpy column-tier contract tests (``repro.sim.npcolumnar``).

The tier's promises: ``storage="numpy"`` is a drop-in ColumnStore —
same slot handles, same ``array('q')`` sentinel encoding, same
boxed-overflow junk contract — so every run is bit-for-bit equal to
plain columnar; when numpy is unavailable (``REPRO_NO_NUMPY``, the CI
fallback job's switch) the scheduler degrades to plain columnar with
exactly one ``NumpyFallbackWarning``; and at sizes past the vector
batch floor the masked-ndarray fused sweeps (convergecast-broadcast
bookkeeping, Ask/Show, Want comparison) replace the scalar per-row
replay without changing a single register — for the sync round license
and for the ``want``/``want-simple`` ablations alike, junk included.
"""

import warnings

import pytest

from repro.graphs.generators import random_connected_graph
from repro.sim import (AsynchronousScheduler, ConflictFreeDaemon,
                       FaultInjector, SynchronousScheduler)
from repro.sim.npcolumnar import (NumpyFallbackWarning,
                                  _reset_fallback_warning, numpy_or_none)
from repro.verification import make_network
from repro.verification.verifier import MstVerifierProtocol


def _snapshot(net, sched):
    return (sched.rounds, net.alarms(),
            {v: dict(r) for v, r in net.registers.items()},
            net.max_memory_bits(), net.total_memory_bits())


def _run_sync(graph, storage, seed, mode=None, junk=False, rounds=40):
    net = make_network(graph)
    proto = MstVerifierProtocol(synchronous=True, comparison_mode=mode)
    sched = SynchronousScheduler(net, proto, storage=storage, bulk=True)
    sched.run(12)
    if junk:
        nodes = graph.nodes()
        regs = net.registers
        regs[nodes[0]]["vstep"] = "not-a-counter"
        regs[nodes[1]]["tt_wd"] = 1 << 70
        regs[nodes[2]]["tt_bbuf"] = [1, 2, 3]
        regs[nodes[3]]["tt_last"] = (True, "x")
    else:
        inj = FaultInjector(net, seed=seed)
        inj.corrupt_random_nodes(2, fraction=0.5)
    sched.run(rounds)
    return _snapshot(net, sched)


@pytest.mark.parametrize("mode", ["sync-window", "want", "want-simple"])
@pytest.mark.parametrize("junk", [False, True])
def test_vector_sweeps_equal_scalar_big_n(mode, junk, campaign_seed):
    """Past the vector batch floor the numpy tier runs every protocol
    mode through the masked fused sweeps; plain columnar runs the same
    rounds through the scalar per-row kernels.  Faults or planted junk
    force boxed/mismatch rows through the residual scalar replay.  The
    final registers, alarms, and memory accounting must be identical."""
    if numpy_or_none() is None:
        pytest.skip("numpy unavailable")
    g = random_connected_graph(72, 126, seed=campaign_seed % 991)
    ref = _run_sync(g, "columnar", campaign_seed, mode=mode, junk=junk)
    got = _run_sync(g, "numpy", campaign_seed, mode=mode, junk=junk)
    assert got == ref, (mode, junk)


def test_fallback_warns_once_and_matches_columnar(campaign_seed,
                                                  monkeypatch):
    """With numpy switched off the tier degrades to plain columnar:
    one ``NumpyFallbackWarning`` for the whole process (not one per
    scheduler), and the degraded run is bit-for-bit the columnar run."""
    g = random_connected_graph(16, 26, seed=campaign_seed % 883)
    ref = _run_sync(g, "columnar", campaign_seed)

    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    _reset_fallback_warning()
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            got = _run_sync(g, "numpy", campaign_seed)
            again = _run_sync(g, "numpy", campaign_seed)
        hits = [w for w in caught
                if issubclass(w.category, NumpyFallbackWarning)]
        assert len(hits) == 1, "fallback must warn exactly once"
        assert "columnar" in str(hits[0].message)
        assert got == ref
        assert again == ref
    finally:
        _reset_fallback_warning()


def test_async_conflict_free_numpy_equals_columnar(campaign_seed):
    """The PR 5 conflict-free license on the numpy tier: independent
    daemon batches routed through the vectorized fused sweeps match
    plain columnar exactly, activations and skip accounting included."""
    if numpy_or_none() is None:
        pytest.skip("numpy unavailable")
    g = random_connected_graph(30, 50, seed=campaign_seed % 877)

    def run(storage):
        net = make_network(g)
        proto = MstVerifierProtocol(synchronous=False)
        sched = AsynchronousScheduler(net, proto,
                                      ConflictFreeDaemon(g, seed=9),
                                      storage=storage, bulk=True)
        sched.run(15)
        inj = FaultInjector(net, seed=campaign_seed)
        inj.corrupt_random_nodes(2, fraction=0.5)
        sched.run(30)
        return (sched.rounds, sched.activations, sched.steps_skipped,
                net.alarms(),
                {v: dict(r) for v, r in net.registers.items()})

    assert run("numpy") == run("columnar")
