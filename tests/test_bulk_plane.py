"""Bulk-activation plane differential tests (``repro.sim.bulk``).

The plane's contract: routing batches through ``Protocol.bulk_step``
(scheduler default) is *bit-for-bit* equivalent to the scalar per-node
loops (``bulk=False``) — same register traces, alarms, rounds,
activations, skip accounting, and memory bits — on every storage
backend (dict / schema / columnar / numpy), under every scheduler kind (sync /
async daemons / the locality-batching daemon), for every protocol that
declares a bulk sweep, and in the presence of adversarial junk planted
into nat/tuple columns mid-sweep (the fused column ops must degrade
exactly like the scalar context writes, and the dirty/skip machinery
must stay sound across batched writes).
"""

import pytest

from repro.engine import TOPOLOGIES, axis, derive_seed, run_scenario, \
    ScenarioSpec
from repro.graphs.generators import (grid_graph, random_connected_graph,
                                     star_graph)
from repro.sim import (STORAGE_KINDS, AsynchronousScheduler,
                       ConflictFreeDaemon, FaultInjector,
                       LocalityBatchDaemon, Network, PermutationDaemon,
                       SynchronousScheduler, TiledConflictFreeDaemon,
                       first_alarm)
from repro.sim.columnar import ColumnStore
from repro.sim.registers import CompiledSchema
from repro.verification import make_network
from repro.verification.hybrid import HybridVerifierProtocol
from repro.verification.verifier import MstVerifierProtocol

STORAGES = STORAGE_KINDS


def _protocol(kind, synchronous):
    if kind == "verifier":
        return MstVerifierProtocol(synchronous=synchronous)
    if kind == "hybrid":
        return HybridVerifierProtocol(synchronous=synchronous)
    from repro.baselines.pls_sqlog import SqLogPlsProtocol
    return SqLogPlsProtocol()


class LiveBulkVerifier(MstVerifierProtocol):
    """The verifier with the live-batch capability declared: no shipped
    protocol opts in (live batches cannot fuse, so routing them would
    be pure callback overhead), but the async routing machinery — gate
    callbacks doing skip checks and tracker setup, after callbacks
    doing accounting and stop conditions, the fallback driver honouring
    both — must stay exactly equivalent for the daemon that eventually
    licenses it."""

    bulk_live = True


def _run_sync(graph, storage, bulk, seed, proto_kind, fast_path=True):
    net = make_network(graph)
    sched = SynchronousScheduler(net, _protocol(proto_kind, True),
                                 fast_path=fast_path, storage=storage,
                                 bulk=bulk)
    trace = []

    def record(n):
        trace.append({v: dict(r) for v, r in n.registers.items()})
        return bool(n.alarms())

    sched.run(30)
    inj = FaultInjector(net, seed=seed)
    inj.corrupt_random_nodes(2, fraction=0.5)
    detect = sched.run(2500, stop_when=record)
    return (detect, sched.rounds, net.alarms(), trace,
            net.max_memory_bits(), net.total_memory_bits())


@pytest.mark.parametrize("proto_kind", ["verifier", "hybrid", "sqlog"])
def test_sync_bulk_vs_scalar_bitwise_equal(proto_kind, campaign_seed):
    """Full per-round register traces of a settle/inject/detect run
    match between the bulk plane and the scalar loop on every storage
    backend (columnar exercises the fused column sweep; dict/schema the
    generic fallback driver), fast path and naive loop alike."""
    g = random_connected_graph(14, 22, seed=campaign_seed % 1013)
    ref = _run_sync(g, "dict", False, campaign_seed, proto_kind)
    for storage in STORAGES:
        for fast_path in (True, False):
            got = _run_sync(g, storage, True, campaign_seed, proto_kind,
                            fast_path)
            assert got == ref, (storage, fast_path)


def _daemon(kind, g, seed):
    if kind == "locality":
        return LocalityBatchDaemon(g, seed=seed)
    if kind == "independent":
        return ConflictFreeDaemon(g, seed=seed)
    if kind == "tiled":
        return TiledConflictFreeDaemon(g, seed=seed)
    return PermutationDaemon(seed=seed)


@pytest.mark.parametrize("daemon_kind",
                         ["permutation", "locality", "independent",
                          "tiled"])
def test_async_bulk_vs_scalar_equal(daemon_kind, campaign_seed):
    """Asynchronous daemon batches routed through the bulk plane (the
    locality daemon's whole neighbourhoods engage it via ``bulk_live``;
    the conflict-free daemon's independent sets via the
    ``conflict_free`` license — with *fused* column sweeps on columnar
    storage; singleton daemons keep the scalar loop) match the scalar
    execution exactly — including the dirty-aware skip accounting,
    which must stay sound when a whole batch's writes land through
    ``bulk_step``."""
    g = random_connected_graph(12, 20, seed=campaign_seed % 983)
    cf = daemon_kind in ("independent", "tiled")

    def run(storage, bulk, dirty_aware=True):
        daemon = _daemon(daemon_kind, g, 5)
        net = make_network(g)
        # the conflict-free license needs no bulk_live declaration —
        # the shipped verifier opts in via bulk_conflict_free
        proto = LiveBulkVerifier(synchronous=False) if bulk and not cf \
            else MstVerifierProtocol(synchronous=False)
        sched = AsynchronousScheduler(net, proto,
                                      daemon, storage=storage, bulk=bulk,
                                      dirty_aware=dirty_aware)
        sched.run(20)
        inj = FaultInjector(net, seed=campaign_seed)
        inj.corrupt_random_nodes(2, fraction=0.5)
        r = sched.run(2000, stop_when=first_alarm)
        return (r, sched.rounds, sched.activations, sched.steps_skipped,
                net.alarms(),
                {v: dict(regs) for v, regs in net.registers.items()})

    for storage in STORAGES:
        ref = run(storage, bulk=False)
        assert run(storage, bulk=True) == ref, storage
    # and against the naive (non-dirty-aware, scalar dict) ground truth,
    # minus the skip counter naive never increments
    naive = run("dict", bulk=False, dirty_aware=False)
    bulk = run("columnar", bulk=True)
    assert bulk[:3] + bulk[4:] == naive[:3] + naive[4:]


def test_engine_bulk_flag_matrix(campaign_seed):
    """The ``bulk`` schedule parameter is implementation-only: flipping
    it reproduces the identical scenario (seeds, faults, metrics) on
    every backend, through the campaign engine.  The cells cover the
    locality and conflict-free (``independent``) daemons across all
    three protocols — the three-way differential matrix of the
    asynchronous fusion license."""
    cells = [("sync", "verifier"), ("sync", "sqlog"),
             ("locality", "verifier"), ("locality", "hybrid"),
             ("locality", "sqlog"), ("permutation", "hybrid"),
             ("independent", "verifier"), ("independent", "hybrid"),
             ("independent", "sqlog"), ("tiled", "verifier"),
             ("tiled", "hybrid"), ("tiled", "sqlog")]
    for sched, proto in cells:
        seed = derive_seed(campaign_seed, "bulk-flag", sched, proto)
        results = []
        for storage in STORAGES:
            flags = [{"bulk": False}, {"bulk": True}]
            if sched in ("independent", "tiled"):
                # the coalescing and vector-gate knobs are equally
                # implementation-only on the conflict-free daemons
                flags += [{"bulk": True, "coalesce": False},
                          {"bulk": True, "vec_min_batch": 2}]
            for extra in flags:
                spec = ScenarioSpec(
                    topology=axis("random", n=12, extra=8),
                    fault=axis("corrupt", count=1, fraction=0.6),
                    schedule=axis(sched, storage=storage, **extra),
                    protocol=axis(proto), seed=seed, max_rounds=20_000)
                r = run_scenario(spec)
                assert r.error is None, (spec.key, r.error)
                results.append((r.detected, r.rounds_run,
                                r.rounds_to_detection, r.alarm_reasons,
                                r.max_memory_bits, r.total_memory_bits,
                                r.activations))
        assert len(set(results)) == 1, (sched, proto, results)


def _plant_junk(net):
    """Adversarial junk straight into declared nat/tuple registers:
    strings and bools in nat columns, huge ints beyond int64, an
    unhashable list in a tuple column, a bool-vs-int shape collision.
    On columnar storage these exercise the boxed-overflow and typed-pool
    paths that the fused batch ops must replicate."""
    nodes = net.graph.nodes()
    regs = net.registers
    regs[nodes[0]]["vstep"] = "not-a-counter"
    regs[nodes[1]]["vstep"] = True
    regs[nodes[1]]["tt_wd"] = 1 << 70
    regs[nodes[2]]["tt_bbuf"] = [1, 2, 3]          # unhashable in a tuple col
    regs[nodes[2]]["cmp_ask"] = (1, True)          # vs interned (1, 1)
    regs[nodes[3]]["tt_out"] = (1, 1)
    regs[nodes[3]]["vstep"] = -7


@pytest.mark.parametrize("storage", STORAGES)
def test_junk_mid_sweep_bulk_equals_scalar(storage, campaign_seed):
    """Fault-injected junk in nat/tuple registers mid-sweep: the fused
    ``inc_nat`` sweep must coerce sentinel-coded and boxed junk exactly
    like the scalar context (restart at 1, drop stale boxed overflow),
    and the run must keep matching the scalar loop bit for bit."""
    g = random_connected_graph(12, 20, seed=campaign_seed % 967)

    def run(bulk):
        net = make_network(g)
        sched = SynchronousScheduler(net, _protocol("verifier", True),
                                     storage=storage, bulk=bulk)
        sched.run(12)
        _plant_junk(net)
        sched.run(40)   # keep sweeping over the junk
        return (sched.rounds, net.alarms(),
                {v: dict(r) for v, r in net.registers.items()},
                net.max_memory_bits(), net.total_memory_bits())

    assert run(True) == run(False)


def test_junk_mid_sweep_vector_path_big_n(campaign_seed):
    """The sync junk differential at a size where the numpy tier's
    whole-batch vector sweep actually engages (n >= the vector batch
    floor): junk planted mid-run must be classified out row by row —
    boxed rows, mismatch rows, alarm candidates all routed to the
    scalar replay — while the clean majority stays on the masked
    ndarray path, bit-for-bit with the scalar loop."""
    g = random_connected_graph(64, 112, seed=campaign_seed % 1009)

    def run(storage, bulk):
        net = make_network(g)
        sched = SynchronousScheduler(net, _protocol("verifier", True),
                                     storage=storage, bulk=bulk)
        sched.run(12)
        _plant_junk(net)
        sched.run(40)
        return (sched.rounds, net.alarms(),
                {v: dict(r) for v, r in net.registers.items()},
                net.max_memory_bits(), net.total_memory_bits())

    ref = run("dict", bulk=False)
    assert run("numpy", bulk=True) == ref
    assert run("columnar", bulk=True) == ref


def test_junk_mid_sweep_async_vector_path(campaign_seed, monkeypatch):
    """The conflict-free async mirror of the big-n vector test: with
    the vector batch floor lowered so the daemon's ~modest independent
    sets engage the masked-ndarray replay, junk planted between runs
    must flow through the per-batch classify/apply split exactly like
    the scalar context writes."""
    from repro.verification.verifier import _VectorSweep
    monkeypatch.setattr(_VectorSweep, "MIN_BATCH", 4)
    g = random_connected_graph(40, 68, seed=campaign_seed % 929)

    def run(storage, bulk):
        net = make_network(g)
        proto = MstVerifierProtocol(synchronous=False)
        sched = AsynchronousScheduler(net, proto,
                                      ConflictFreeDaemon(g, seed=3),
                                      storage=storage, bulk=bulk)
        sched.run(10)
        _plant_junk(net)
        r = sched.run(25)
        return (r, sched.rounds, sched.activations, sched.steps_skipped,
                net.alarms(),
                {v: dict(regs) for v, regs in net.registers.items()})

    ref = run("dict", bulk=False)
    assert run("numpy", bulk=True) == ref
    assert run("columnar", bulk=True) == ref


def test_conflict_free_batches_are_independent(campaign_seed):
    """License soundness: every batch the ``ConflictFreeDaemon`` issues
    must have pairwise *disjoint closed neighbourhoods* (no two
    activated nodes within distance 2 — the independence radius that
    makes live fused sweeps unobservable), and every sweep must cover
    every node exactly once (fairness), across random, dense-star,
    grid, and Section-9 subdivided topologies."""
    s = campaign_seed % 911
    graphs = [
        random_connected_graph(20, 34, seed=s),
        star_graph(10, seed=s),
        grid_graph(4, 5, seed=s),
        TOPOLOGIES["subdivided"](seed=s, base_n=10, extra=14, tau=2),
    ]
    for g in graphs:
        nodes = g.nodes()
        closed = {v: {v, *g.neighbors(v)} for v in nodes}
        daemon = ConflictFreeDaemon(g, seed=campaign_seed % 509)
        for _sweep in range(3):
            covered = []
            while len(covered) < len(nodes):
                batch = daemon.next_batch(nodes)
                blocked = set()
                for v in batch:
                    assert blocked.isdisjoint(closed[v]), \
                        (g.n, batch, v, "batchmates within the closed-"
                         "neighbourhood radius")
                    blocked |= closed[v]
                covered.extend(batch)
            assert sorted(covered) == sorted(nodes), \
                (g.n, "a sweep must activate every node exactly once")


def test_tiled_batches_are_independent_and_fair(campaign_seed):
    """License soundness of the tiled hybrid daemon: every sub-batch it
    issues is pairwise independent at the closed-neighbourhood radius
    (exactly the ``ConflictFreeDaemon`` license — tiles only *order*
    the sweep, they must not weaken independence), and every sweep
    still covers every node exactly once."""
    s = campaign_seed % 877
    graphs = [
        random_connected_graph(20, 34, seed=s),
        star_graph(10, seed=s),
        grid_graph(4, 5, seed=s),
        TOPOLOGIES["subdivided"](seed=s, base_n=10, extra=14, tau=2),
    ]
    for g in graphs:
        nodes = g.nodes()
        closed = {v: {v, *g.neighbors(v)} for v in nodes}
        daemon = TiledConflictFreeDaemon(g, seed=campaign_seed % 503)
        for _sweep in range(3):
            covered = []
            while len(covered) < len(nodes):
                batch = daemon.next_batch(nodes)
                blocked = set()
                for v in batch:
                    assert blocked.isdisjoint(closed[v]), \
                        (g.n, batch, v, "batchmates within the closed-"
                         "neighbourhood radius")
                    blocked |= closed[v]
                covered.extend(batch)
            assert sorted(covered) == sorted(nodes), \
                (g.n, "a sweep must activate every node exactly once")


@pytest.mark.parametrize("daemon_kind", ["independent", "tiled"])
@pytest.mark.parametrize("proto_kind", ["verifier", "hybrid", "sqlog"])
def test_coalescing_on_off_bitwise_equal(daemon_kind, proto_kind,
                                         campaign_seed):
    """Conflict-free super-batch coalescing is unobservable: with junk
    planted mid-sweep, a coalescing run matches the uncoalesced one bit
    for bit — register traces at every stop poll, rounds, activations,
    skip accounting, alarms, and the daemon's own issue accounting —
    on all four storage backends."""
    g = random_connected_graph(14, 24, seed=campaign_seed % 919)

    def run(storage, coalesce):
        net = make_network(g)
        proto = _protocol(proto_kind, False)
        sched = AsynchronousScheduler(net, proto,
                                      _daemon(daemon_kind, g, 5),
                                      storage=storage, coalesce=coalesce)
        sched.run(10)
        _plant_junk(net)
        trace = []

        def record(n):
            trace.append({v: dict(r) for v, r in n.registers.items()})
            return bool(n.alarms())

        r = sched.run(30, stop_when=record)
        return (r, sched.rounds, sched.activations, sched.steps_skipped,
                sched.daemon.sweeps, net.alarms(), trace,
                {v: dict(regs) for v, regs in net.registers.items()})

    for storage in STORAGES:
        ref = run(storage, coalesce=False)
        got = run(storage, coalesce=True)
        assert got == ref, (storage, daemon_kind, proto_kind)


def test_coalesced_stop_replays_batch_boundaries(campaign_seed):
    """A stop condition that fires for a node of the sweep's *first*
    daemon batch must halt the coalesced super-batch at that original
    boundary: the later batches stay unexecuted (identical activation
    counts to the uncoalesced run) and are handed back to the daemon,
    so a later resume issues them exactly as an uncoalesced scheduler
    would have."""
    g = random_connected_graph(16, 28, seed=campaign_seed % 907)

    def run(coalesce):
        net = make_network(g)
        proto = MstVerifierProtocol(synchronous=False)
        sched = AsynchronousScheduler(net, proto,
                                      ConflictFreeDaemon(g, seed=7),
                                      storage="numpy", coalesce=coalesce)
        sched.run(6)
        polls = [0]
        threshold = sched.activations + 1   # fire at the first boundary

        def stop(n):
            polls[0] += 1
            return sched.activations >= threshold

        r = sched.run(10, stop_when=stop)
        out = [(r, sched.rounds, sched.activations, polls[0],
                {v: dict(regs) for v, regs in net.registers.items()})]
        # the requeued tail must replay exactly on resume
        r2 = sched.run(4)
        out.append((r2, sched.rounds, sched.activations,
                    {v: dict(regs) for v, regs in net.registers.items()}))
        return out

    assert run(True) == run(False)


def test_junk_mid_sweep_async_fused_equals_scalar(campaign_seed):
    """The asynchronous mirror of the sync junk test: under the
    conflict-free daemon, junk planted into nat/tuple columns between
    runs must flow through the *live* fused column sweeps exactly like
    the scalar context writes — bit-for-bit vs the scalar loop across
    dict/schema/columnar, skip accounting included."""
    g = random_connected_graph(12, 20, seed=campaign_seed % 941)

    def run(storage, bulk, dirty_aware=True):
        net = make_network(g)
        proto = MstVerifierProtocol(synchronous=False)
        sched = AsynchronousScheduler(net, proto,
                                      ConflictFreeDaemon(g, seed=3),
                                      storage=storage, bulk=bulk,
                                      dirty_aware=dirty_aware)
        sched.run(10)
        _plant_junk(net)
        r = sched.run(25)
        return (r, sched.rounds, sched.activations, sched.steps_skipped,
                net.alarms(),
                {v: dict(regs) for v, regs in net.registers.items()})

    ref = run("dict", bulk=False)
    for storage in STORAGES:
        assert run(storage, bulk=True) == ref, storage
    # and against the naive scalar ground truth (minus the skip counter
    # naive never increments)
    naive = run("dict", bulk=False, dirty_aware=False)
    fused = run("columnar", bulk=True)
    assert fused[:3] + fused[4:] == naive[:3] + naive[4:]


def test_junk_mid_sweep_skip_soundness_async(campaign_seed):
    """Skip soundness survives batched writes over junk: the
    locality-batched dirty-aware scheduler on columnar storage, with
    junk planted between runs, still matches the naive scalar loop."""
    g = random_connected_graph(10, 16, seed=campaign_seed % 953)

    def run(storage, bulk, dirty_aware):
        net = make_network(g)
        proto = LiveBulkVerifier(synchronous=False) if bulk \
            else MstVerifierProtocol(synchronous=False)
        sched = AsynchronousScheduler(net, proto,
                                      LocalityBatchDaemon(g, seed=3),
                                      storage=storage, bulk=bulk,
                                      dirty_aware=dirty_aware)
        sched.run(10)
        _plant_junk(net)
        r = sched.run(25)
        return (r, sched.rounds, sched.activations, net.alarms(),
                {v: dict(regs) for v, regs in net.registers.items()})

    ref = run("dict", bulk=False, dirty_aware=False)
    for storage in STORAGES:
        assert run(storage, bulk=True, dirty_aware=True) == ref, storage


def test_inc_nat_batch_semantics():
    """The fused column RMW coerces exactly like the scalar context:
    unset/None/bool/str/huge/negative all restart at 1, in-range values
    increment, boxed overflow entries are dropped by the write."""
    schema = CompiledSchema(["x", "t"], ["nat", "tuple"], [None, None])
    store = ColumnStore(schema, list(range(7)))
    x = schema.slots["x"]
    store.set_value(1, x, 5)
    store.set_value(2, x, None)
    store.set_value(3, x, "junk")       # boxed
    store.set_value(4, x, True)         # boxed (bools keep their type)
    store.set_value(5, x, 1 << 70)      # boxed (beyond int64)
    store.set_value(6, x, -3)           # stored, but not a nat
    out = store.inc_nat_batch(list(range(7)), x)
    assert out == [1, 6, 1, 1, 1, 1, 1]
    assert not store.overflow[x], "stale boxed entries must be dropped"
    assert [store.get_value(i, x) for i in range(7)] == out
    # pooled column fallback keeps the same semantics
    t = schema.slots["t"]
    store.set_value(0, t, (1, 2))
    assert store.inc_nat_batch([0, 1], t) == [1, 1]
    assert store.get_value(0, t) == 1


def test_gather_values_batch():
    schema = CompiledSchema(["n", "t", "o"], ["nat", "tuple", "opaque"],
                            [None, None, None])
    store = ColumnStore(schema, list(range(4)))
    n, t, o = (schema.slots[k] for k in ("n", "t", "o"))
    store.set_value(0, n, 9)
    store.set_value(1, n, None)
    store.set_value(2, n, "boxed")
    store.set_value(0, t, ("a", 1))
    store.set_value(1, t, [9])          # unhashable -> boxed
    store.set_value(0, o, {"d": 1})
    assert store.gather_values([0, 1, 2, 3], n, "dflt") == \
        [9, None, "boxed", "dflt"]
    assert store.gather_values([0, 1, 2, 3], t) == \
        [("a", 1), [9], None, None]
    assert store.gather_values([0, 1], o, 0) == [{"d": 1}, 0]


# ---------------------------------------------------------------------------
# churn crossing the bulk plane
# ---------------------------------------------------------------------------

def _churn_run(g, storage, make_sched, seed):
    """Settle, then drive one churn script; the report plus final
    registers are what the bulk/coalescing knobs may not perturb."""
    from repro.sim import ChurnScript, run_with_churn
    from repro.trains.comparison import rotation_settled
    work = g.copy()
    net = make_network(work)
    proto, sched = make_sched(net, work)
    sched.run(24)
    script = ChurnScript.generate(work, seed=seed, events=4)
    report = run_with_churn(net, sched, proto, script, window=40,
                            settled=rotation_settled)
    return (report.as_tuple(), dict(net.alarms()),
            {v: dict(net.registers[v])
             for v in sorted(net.graph.nodes())})


def test_churn_sync_bulk_vs_scalar_equal(campaign_seed):
    """Crash/rejoin/reweight events between runs: the fused column
    sweeps (and the numpy vector tier's per-sweep plans, which the
    events retire) must keep matching the scalar loop bit for bit."""
    g = random_connected_graph(12, 20, seed=campaign_seed % 1019)

    def make(bulk, storage, fast_path=True):
        def build(net, work):
            proto = _protocol("verifier", True)
            return proto, SynchronousScheduler(
                net, proto, storage=storage, bulk=bulk,
                fast_path=fast_path)
        return build

    ref = _churn_run(g, "dict", make(False, "dict"), campaign_seed)
    for storage in STORAGES:
        for bulk in (True, False):
            got = _churn_run(g, storage, make(bulk, storage),
                             campaign_seed)
            assert got == ref, (storage, bulk)
    assert _churn_run(g, "numpy", make(True, "numpy", fast_path=False),
                      campaign_seed) == ref


@pytest.mark.parametrize("daemon_kind", ["independent", "tiled"])
def test_churn_coalescing_on_off_equal(daemon_kind, campaign_seed):
    """Churn events fence super-batch coalescing: a coalescing run
    across crash/rejoin/reweight events matches the uncoalesced one —
    no super-batch may span a topology change."""
    g = random_connected_graph(12, 20, seed=campaign_seed % 911)

    def make(coalesce, storage):
        def build(net, work):
            proto = _protocol("verifier", False)
            return proto, AsynchronousScheduler(
                net, proto, _daemon(daemon_kind, work, 5),
                storage=storage, coalesce=coalesce)
        return build

    for storage in ("columnar", "numpy"):
        ref = _churn_run(g, storage, make(False, storage), campaign_seed)
        got = _churn_run(g, storage, make(True, storage), campaign_seed)
        assert got == ref, (storage, daemon_kind)
