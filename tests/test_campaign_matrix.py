"""The randomized soundness/completeness test matrix (Section 2.4).

The paper's two properties are statistical over scenarios, so they are
asserted over a seeded grid — topologies x fault recipes x
schedulers/daemons — expressed *through* the campaign engine, which
therefore gets exercised end to end (grid expansion, per-scenario seed
derivation, multiprocessing fan-out, result aggregation):

* **completeness** — on a legal labeling of the true MST, no scheduler
  and no daemon ever produces an alarm;
* **soundness** — every faulty cell (register corruption, node
  scramble, or an adversarially labeled non-MST) is detected within the
  scenario's round budget.

The default seed is pinned for CI; set ``REPRO_TEST_SEED`` to sweep a
fresh sample of the scenario space.
"""

import pytest

from repro.engine import (CampaignRunner, adversarial_labeling_matrix,
                          run_scenario, soundness_completeness_matrix)


@pytest.fixture(scope="module")
def matrix_result(campaign_seed, campaign_workers):
    specs = soundness_completeness_matrix(seed=campaign_seed)
    assert len(specs) >= 48, "the matrix must stay a real sweep"
    return CampaignRunner(workers=campaign_workers).run(specs)


def test_matrix_is_a_real_grid(matrix_result):
    """Every axis value appears; the grid is the cartesian product minus
    only the unsatisfiable (label_swap on a tree) cells."""
    topologies = matrix_result.by("topology")
    faults = matrix_result.by("fault")
    schedules = matrix_result.by("schedule")
    assert len(topologies) == 4
    assert len(faults) == 4
    assert len(schedules) == 4
    assert len(matrix_result) >= 48


def test_no_scenario_errors(matrix_result):
    errors = matrix_result.errors()
    assert not errors, [(r.spec.key, r.error) for r in errors]


def test_zero_completeness_violations(matrix_result):
    """No false alarm on any legal labeling, under any daemon."""
    bad = matrix_result.completeness_violations()
    assert not bad, [(r.spec.key, r.alarm_reasons) for r in bad]


def test_zero_soundness_violations(matrix_result):
    """Every fault is detected within the scenario's round budget."""
    bad = matrix_result.soundness_violations()
    assert not bad, [(r.spec.key, r.rounds_run) for r in bad]


def test_detection_is_measured(matrix_result):
    """Faulty cells report detection time (and distance for injected
    faults) so the matrix doubles as a Theorem 8.5 measurement sweep."""
    for r in matrix_result:
        if r.expected_detection and r.detected and not r.premature_alarm:
            assert r.rounds_to_detection is not None
            assert r.alarm_count >= 1
        assert r.max_memory_bits > 0


def test_scenarios_reproduce_from_their_spec(matrix_result):
    """Any single cell re-runs bit-identically from its spec alone —
    the engine's reproducibility contract (campaign seed -> scenario
    seed -> every random choice)."""
    sample = [r for r in matrix_result.results if r.detected][:2] + \
             [r for r in matrix_result.results if not r.detected][:1]
    assert sample
    for original in sample:
        rerun = run_scenario(original.spec)
        assert rerun.detected == original.detected
        assert rerun.rounds_to_detection == original.rounds_to_detection
        assert rerun.settle_rounds == original.settle_rounds
        assert rerun.alarm_count == original.alarm_count
        assert rerun.max_memory_bits == original.max_memory_bits
        assert rerun.faulty_nodes == original.faulty_nodes


class TestAdversarialLabelingMatrix:
    """``label_swap`` soundness over all three label formats: the train
    verifier, the hybrid scheme, and the sqlog 1-round PLS must all
    reject an honestly-labeled non-MST (only the minimality comparisons
    can expose it — the C2 checks of Section 8)."""

    @pytest.fixture(scope="class")
    def labeling_result(self, campaign_seed, campaign_workers):
        specs = adversarial_labeling_matrix(seed=campaign_seed)
        assert len(specs) == 12, "2 topologies x 2 schedules x 3 protocols"
        return CampaignRunner(workers=campaign_workers).run(specs)

    def test_covers_all_protocols(self, labeling_result):
        assert set(labeling_result.by("protocol")) == \
            {"verifier", "hybrid", "sqlog"}

    def test_no_errors(self, labeling_result):
        errors = labeling_result.errors()
        assert not errors, [(r.spec.key, r.error) for r in errors]

    def test_every_labeling_rejected(self, labeling_result):
        bad = labeling_result.violations()
        assert not bad, [(r.spec.key, r.rounds_run) for r in bad]
        assert all(r.detected for r in labeling_result)

    def test_minimality_is_the_exposed_reason(self, labeling_result):
        """The adversary passes every static/shape check by construction,
        so the alarm must come from a minimality comparison (C2/C1) —
        not from well-forming."""
        for r in labeling_result:
            assert any("C2" in reason or "C1" in reason
                       for reason in r.alarm_reasons), \
                (r.spec.key, r.alarm_reasons)
