"""Differential test: every storage backend is bit-for-bit equivalent.

Four backends coexist: the legacy per-node dict store (the reference
semantics), the typed register file (``repro.sim.registers``, slot
lists per node), the columnar store (``repro.sim.columnar`` —
``array('q')`` columns, interning pool, conservative column/node dirty
tracking), and the numpy tier (``repro.sim.npcolumnar`` — the same
columnar representation with vectorized bulk sweeps).  They
re-represent node state, but none of that may be *observable*: the
same scenario must produce identical alarms, rounds, activations,
register contents, and memory-bit accounting under every backend, for
every scheduler and protocol.

Two layers of evidence:

* a randomized scenario sweep driven through the campaign engine with
  the ``storage`` schedule parameter swept over ``dict`` / ``schema`` /
  ``columnar`` / ``numpy`` (scenario seeds derive from
  ``campaign_seed``, so
  ``REPRO_TEST_SEED`` re-randomizes the whole sweep);
* direct scheduler-level runs comparing full register traces through
  settle/inject/detect phases across all three label formats (train
  verifier, hybrid, sqlog), including the dirty-aware asynchronous
  scheduler's skip logic and the locality-batching daemon.
"""

import dataclasses

import pytest

from repro.engine import axis, derive_seed, run_scenario, ScenarioSpec
from repro.graphs.generators import random_connected_graph
from repro.sim import (STORAGE_KINDS, AsynchronousScheduler,
                       ConflictFreeDaemon, FaultInjector,
                       LocalityBatchDaemon, Network, PermutationDaemon,
                       RandomDaemon, RoundRobinDaemon,
                       SynchronousScheduler, TiledConflictFreeDaemon,
                       first_alarm)
from repro.verification import make_network
from repro.verification.hybrid import HybridVerifierProtocol, hybrid_labels
from repro.verification.marker import run_marker
from repro.verification.verifier import MstVerifierProtocol

STORAGES = STORAGE_KINDS


def _strip_spec(result):
    """Result fields that must match across storages: drop wall_time
    and the bulk-plane accounting diagnostics — how much work ran
    fused vs scalar is exactly what storage backends are allowed to
    vary (only the columnar/numpy tiers coalesce and fuse at all)."""
    d = dataclasses.asdict(result)
    d.pop("wall_time")
    d.pop("spec")
    for diag in ("super_batches", "batches_coalesced", "rows_fused",
                 "rows_residual", "rows_scalar", "plan_rebuilds",
                 "plan_refreshes"):
        d.pop(diag)
    return d


def _spec_triples(campaign_seed):
    """Storage triples of one spec, across every axis kind."""
    cells = [
        ("random", dict(n=12, extra=8), "none", {}, "sync", "verifier"),
        ("random", dict(n=12, extra=8), "corrupt", dict(count=1),
         "sync", "verifier"),
        ("random", dict(n=14, extra=10), "label_swap", {}, "sync", "hybrid"),
        ("grid", dict(rows=3, cols=3), "corrupt", dict(count=1),
         "permutation", "verifier"),
        ("ring", dict(n=8), "scramble", dict(count=2),
         "round_robin", "verifier"),
        ("random", dict(n=12, extra=8), "label_swap", {}, "permutation",
         "sqlog"),
        ("path", dict(n=10), "corrupt", dict(count=1), "sync", "sqlog"),
        ("random", dict(n=12, extra=8), "corrupt", dict(count=1),
         "locality", "verifier"),
        ("ring", dict(n=8), "corrupt", dict(count=1), "locality", "sqlog"),
        ("random", dict(n=12, extra=8), "corrupt", dict(count=1),
         "tiled", "verifier"),
        ("grid", dict(rows=3, cols=3), "corrupt", dict(count=1),
         "tiled", "hybrid"),
        ("ring", dict(n=8), "scramble", dict(count=1), "tiled", "sqlog"),
        ("random", dict(n=14, extra=10), "corrupt", dict(count=1),
         "independent", "hybrid"),
        # sustained churn: topology mutates mid-run — port tombstones,
        # columnar freelist rows, and daemon cache invalidation must
        # all stay invisible to the per-event metrics
        ("random", dict(n=12, extra=8), "churn", dict(events=4),
         "sync", "verifier"),
        ("random", dict(n=10, extra=6), "churn", dict(events=3),
         "independent", "hybrid"),
    ]
    triples = []
    for topo, tp, fault, fp, sched, proto in cells:
        seed = derive_seed(campaign_seed, "storage-diff", topo, fault,
                           sched, proto)
        base = dict(topology=axis(topo, **tp), fault=axis(fault, **fp),
                    protocol=axis(proto), seed=seed, max_rounds=20_000)
        triples.append(tuple(
            ScenarioSpec(schedule=axis(sched, storage=storage), **base)
            for storage in STORAGES))
    return triples


def test_scenarios_match_across_storage(campaign_seed):
    """The same scenario under all three storages yields identical
    alarms, rounds, memory bits, and every other metric."""
    for triple in _spec_triples(campaign_seed):
        results = [run_scenario(spec) for spec in triple]
        assert results[0].error is None, triple[0].key
        ref = _strip_spec(results[0])
        for spec, result in zip(triple[1:], results[1:]):
            assert _strip_spec(result) == ref, \
                f"storage divergence in {spec.key}"


def _protocol_for(kind, synchronous):
    if kind == "verifier":
        return MstVerifierProtocol(synchronous=synchronous)
    if kind == "hybrid":
        return HybridVerifierProtocol(synchronous=synchronous)
    from repro.baselines.pls_sqlog import SqLogPlsProtocol
    return SqLogPlsProtocol()


def _run_sync(graph, storage, fast_path, seed, proto_kind="verifier"):
    net = make_network(graph)
    proto = _protocol_for(proto_kind, True)
    sched = SynchronousScheduler(net, proto, fast_path=fast_path,
                                 storage=storage)
    trace = []

    def record(n):
        trace.append({v: dict(r) for v, r in n.registers.items()})
        return bool(n.alarms())

    sched.run(40)
    inj = FaultInjector(net, seed=seed)
    inj.corrupt_random_nodes(2, fraction=0.5)
    detect = sched.run(3000, stop_when=record)
    return (detect, sched.rounds, net.alarms(), trace,
            net.max_memory_bits(), net.total_memory_bits())


@pytest.mark.parametrize("proto_kind", ["verifier", "sqlog"])
def test_sync_register_trace_bitwise_equal(proto_kind, campaign_seed):
    """Full per-round register traces match across storage x fast_path
    through a settle/inject/detect run, for both label formats that run
    standalone."""
    g = random_connected_graph(16, 26, seed=campaign_seed % 1009)
    ref = _run_sync(g, "dict", False, campaign_seed, proto_kind)
    for storage, fast_path in [("dict", True), ("schema", False),
                               ("schema", True), ("columnar", False),
                               ("columnar", True), ("numpy", False),
                               ("numpy", True)]:
        got = _run_sync(g, storage, fast_path, campaign_seed, proto_kind)
        assert got == ref, (storage, fast_path)


@pytest.mark.parametrize("daemon_cls", [PermutationDaemon, RoundRobinDaemon,
                                        RandomDaemon, LocalityBatchDaemon,
                                        ConflictFreeDaemon,
                                        TiledConflictFreeDaemon])
def test_async_dirty_aware_bitwise_equal(daemon_cls, campaign_seed):
    """The dirty-aware asynchronous scheduler (under every storage and
    daemon, including locality batching and both conflict-free covers)
    matches the naive activation loop: same rounds, activations,
    alarms, and final registers."""
    g = random_connected_graph(12, 20, seed=campaign_seed % 997)

    def make_daemon():
        if daemon_cls is RoundRobinDaemon:
            return daemon_cls()
        if daemon_cls in (LocalityBatchDaemon, ConflictFreeDaemon,
                          TiledConflictFreeDaemon):
            return daemon_cls(g, seed=7)
        return daemon_cls(seed=7)

    def run(storage, dirty_aware):
        net = make_network(g)
        proto = MstVerifierProtocol(synchronous=False)
        sched = AsynchronousScheduler(net, proto, make_daemon(),
                                      storage=storage,
                                      dirty_aware=dirty_aware)
        sched.run(25)
        inj = FaultInjector(net, seed=campaign_seed)
        inj.corrupt_random_nodes(2, fraction=0.5)
        r = sched.run(2500, stop_when=first_alarm)
        return (r, sched.rounds, sched.activations, net.alarms(),
                {v: dict(regs) for v, regs in net.registers.items()})

    ref = run("dict", False)
    for storage in STORAGES:
        for dirty_aware in (False, True):
            if (storage, dirty_aware) == ("dict", False):
                continue
            assert run(storage, dirty_aware) == ref, (storage, dirty_aware)


def test_async_dirty_aware_skips_quiescent_nodes():
    """On an accepting 1-round PLS run the dirty-aware scheduler provably
    skips re-steps (each node executes once per run, the rest skip) while
    producing the identical outcome — under both slot and columnar
    storage, and under the locality daemon (whose whole-neighbourhood
    batches are exactly what the skip amortizes)."""
    from repro.baselines.pls_sqlog import SqLogPlsProtocol, sqlog_labels

    g = random_connected_graph(14, 24, seed=5)
    labels = sqlog_labels(g)

    def run(storage, dirty_aware, locality=False):
        net = Network(g)
        net.install(labels)
        daemon = LocalityBatchDaemon(g, seed=1) if locality \
            else PermutationDaemon(seed=1)
        sched = AsynchronousScheduler(net, SqLogPlsProtocol(), daemon,
                                      storage=storage,
                                      dirty_aware=dirty_aware)
        r = sched.run(30)
        return (r, sched.rounds, sched.activations, net.alarms(),
                {v: dict(regs) for v, regs in net.registers.items()},
                sched.steps_skipped)

    for locality in (False, True):
        naive = run("schema", False, locality)
        assert naive[5] == 0
        for storage in ("schema", "columnar", "numpy"):
            aware = run(storage, True, locality)
            assert naive[:5] == aware[:5], (storage, locality)
            # every activation after each node's first no-op step skips
            assert aware[5] >= aware[2] - 2 * g.n, (storage, locality)


def test_fault_recipes_storage_independent(campaign_seed):
    """The fault injector's rng draws must not depend on the storage
    backend's iteration order: the same seed corrupts the same registers
    to the same values under all three representations."""
    g = random_connected_graph(10, 16, seed=3)
    marker = run_marker(g)

    def corrupted(storage):
        net = make_network(g, marker)
        proto = MstVerifierProtocol(synchronous=True)
        sched = SynchronousScheduler(net, proto, storage=storage)
        sched.run(10)
        inj = FaultInjector(net, seed=campaign_seed)
        inj.scramble_node(g.nodes()[0])
        inj.corrupt_random_nodes(2, fraction=0.4)
        return {v: dict(regs) for v, regs in net.registers.items()}

    ref = corrupted("dict")
    assert corrupted("schema") == ref
    assert corrupted("columnar") == ref
    assert corrupted("numpy") == ref


def test_hybrid_storage_differential(campaign_seed):
    """The hybrid protocol (replicated bottom pieces + top train) is
    storage-equivalent through a cold adversarial start."""
    from repro.graphs.mst_reference import kruskal_mst
    from repro.verification.adversary import (labels_for_claimed_tree,
                                              swap_one_mst_edge)

    g = random_connected_graph(14, 24, seed=campaign_seed % 911)
    wrong = swap_one_mst_edge(g, kruskal_mst(g))
    assert wrong is not None
    labels = hybrid_labels(labels_for_claimed_tree(g, wrong))

    def run(storage):
        net = Network(g)
        net.install(labels)
        proto = HybridVerifierProtocol(synchronous=True)
        sched = SynchronousScheduler(net, proto, storage=storage)
        r = sched.run(5000, stop_when=first_alarm)
        return (r, net.alarms(),
                {v: dict(regs) for v, regs in net.registers.items()})

    ref = run("dict")
    assert run("schema") == ref
    assert run("columnar") == ref
    assert run("numpy") == ref
    assert ref[1], "hybrid must reject the adversarial labeling"


def test_protocol_shared_across_schedulers_rebinds():
    """A protocol instance handed to other schedulers (different
    storages, different networks) is re-bound before each run, so no
    scheduler runs with another's handles or label caches."""
    g1 = random_connected_graph(10, 16, seed=1)
    g2 = random_connected_graph(10, 16, seed=2)
    g3 = random_connected_graph(10, 16, seed=4)
    proto = MstVerifierProtocol(synchronous=True)
    net1, net2, net3 = make_network(g1), make_network(g2), make_network(g3)
    s1 = SynchronousScheduler(net1, proto, storage="dict")
    s2 = SynchronousScheduler(net2, proto, storage="schema")
    s3 = SynchronousScheduler(net3, proto, storage="columnar")
    # interleave: each run must rebind to its own storage
    for _ in range(2):
        s1.run(3)
        s2.run(3)
        s3.run(3)
    assert not net1.alarms() and not net2.alarms() and not net3.alarms()

    # reference: fresh protocols, same schedules
    for g, storage, net in ((g1, "dict", net1), (g2, "schema", net2),
                            (g3, "columnar", net3)):
        ref_net = make_network(g)
        ref = SynchronousScheduler(ref_net, MstVerifierProtocol(
            synchronous=True), storage=storage)
        ref.run(6)
        assert {v: dict(r) for v, r in ref_net.registers.items()} == \
            {v: dict(r) for v, r in net.registers.items()}


def test_shared_network_across_storage_schedulers():
    """Two schedulers with different storage modes sharing one *network*
    re-adopt the backing layout on each run (values preserved through
    the slot-file -> columns -> slot-file round trips) and behave
    exactly like a same-storage scheduler pair."""
    g = random_connected_graph(10, 16, seed=9)

    def interleave(second_storage):
        net = make_network(g)
        s1 = SynchronousScheduler(net, MstVerifierProtocol(
            synchronous=True), storage="schema")
        s2 = SynchronousScheduler(net, MstVerifierProtocol(
            synchronous=True), storage=second_storage)
        s1.run(3)
        s2.run(3)   # columnar: switches the network to columns
        s1.run(3)   # and back to slot files
        return {v: dict(r) for v, r in net.registers.items()}

    assert interleave("columnar") == interleave("schema")
