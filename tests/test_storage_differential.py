"""Differential test: register-file storage is bit-for-bit equivalent to
the legacy dict storage.

The typed register file (``repro.sim.registers``) re-represents node
state — slot-indexed lists, write-time nat caching, decode caches,
stable-version counters, label-derived protocol caches — but none of
that may be *observable*: the same scenario must produce identical
alarms, rounds, activations, register contents, and memory-bit
accounting under both backends, for every scheduler and protocol.

Two layers of evidence:

* a randomized scenario sweep driven through the campaign engine with
  the ``storage`` schedule parameter flipped between ``schema`` and
  ``dict`` (scenario seeds derive from ``campaign_seed``, so
  ``REPRO_TEST_SEED`` re-randomizes the whole sweep);
* direct scheduler-level runs comparing full register traces through
  settle/inject/detect phases, including the dirty-aware asynchronous
  scheduler's skip logic.
"""

import dataclasses

import pytest

from repro.engine import axis, derive_seed, run_scenario, ScenarioSpec
from repro.graphs.generators import random_connected_graph
from repro.sim import (AsynchronousScheduler, FaultInjector, Network,
                       PermutationDaemon, RandomDaemon, RoundRobinDaemon,
                       SynchronousScheduler, first_alarm)
from repro.verification import make_network
from repro.verification.hybrid import HybridVerifierProtocol, hybrid_labels
from repro.verification.marker import run_marker
from repro.verification.verifier import MstVerifierProtocol


def _strip_spec(result):
    """Result fields that must match across storages (drop wall_time)."""
    d = dataclasses.asdict(result)
    d.pop("wall_time")
    return d


def _spec_pairs(campaign_seed):
    """(schema spec, dict spec) pairs across every axis kind."""
    cells = [
        ("random", dict(n=12, extra=8), "none", {}, "sync", "verifier"),
        ("random", dict(n=12, extra=8), "corrupt", dict(count=1),
         "sync", "verifier"),
        ("random", dict(n=14, extra=10), "label_swap", {}, "sync", "hybrid"),
        ("grid", dict(rows=3, cols=3), "corrupt", dict(count=1),
         "permutation", "verifier"),
        ("ring", dict(n=8), "scramble", dict(count=2),
         "round_robin", "verifier"),
        ("random", dict(n=12, extra=8), "label_swap", {}, "permutation",
         "sqlog"),
        ("path", dict(n=10), "corrupt", dict(count=1), "sync", "sqlog"),
    ]
    pairs = []
    for topo, tp, fault, fp, sched, proto in cells:
        seed = derive_seed(campaign_seed, "storage-diff", topo, fault,
                           sched, proto)
        base = dict(topology=axis(topo, **tp), fault=axis(fault, **fp),
                    protocol=axis(proto), seed=seed, max_rounds=20_000)
        pairs.append((
            ScenarioSpec(schedule=axis(sched, storage="schema"), **base),
            ScenarioSpec(schedule=axis(sched, storage="dict"), **base),
        ))
    return pairs


def test_scenarios_match_across_storage(campaign_seed):
    """The same scenario under schema-backed and dict storage yields
    identical alarms, rounds, memory bits, and every other metric."""
    for schema_spec, dict_spec in _spec_pairs(campaign_seed):
        schema_result = run_scenario(schema_spec)
        dict_result = run_scenario(dict_spec)
        assert schema_result.error is None, schema_spec.key
        a = _strip_spec(schema_result)
        b = _strip_spec(dict_result)
        # the spec differs only in the storage parameter, by construction
        a.pop("spec")
        b.pop("spec")
        assert a == b, f"storage divergence in {schema_spec.key}"


def _run_sync(graph, use_schema, fast_path, seed):
    net = make_network(graph)
    proto = MstVerifierProtocol(synchronous=True)
    sched = SynchronousScheduler(net, proto, fast_path=fast_path,
                                 use_schema=use_schema)
    trace = []

    def record(n):
        trace.append({v: dict(r) for v, r in n.registers.items()})
        return bool(n.alarms())

    sched.run(40)
    inj = FaultInjector(net, seed=seed)
    inj.corrupt_random_nodes(2, fraction=0.5)
    detect = sched.run(3000, stop_when=record)
    return (detect, sched.rounds, net.alarms(), trace,
            net.max_memory_bits(), net.total_memory_bits())


def test_sync_register_trace_bitwise_equal(campaign_seed):
    """Full per-round register traces match across storage x fast_path
    through a settle/inject/detect run."""
    g = random_connected_graph(16, 26, seed=campaign_seed % 1009)
    ref = _run_sync(g, use_schema=False, fast_path=False,
                    seed=campaign_seed)
    for use_schema, fast_path in [(False, True), (True, False),
                                  (True, True)]:
        got = _run_sync(g, use_schema=use_schema, fast_path=fast_path,
                        seed=campaign_seed)
        assert got == ref, (use_schema, fast_path)


@pytest.mark.parametrize("daemon_cls", [PermutationDaemon, RoundRobinDaemon,
                                        RandomDaemon])
def test_async_dirty_aware_bitwise_equal(daemon_cls, campaign_seed):
    """The dirty-aware asynchronous scheduler (and both storages) matches
    the naive activation loop: same rounds, activations, alarms, and
    final registers."""
    g = random_connected_graph(12, 20, seed=campaign_seed % 997)

    def run(use_schema, dirty_aware):
        net = make_network(g)
        proto = MstVerifierProtocol(synchronous=False)
        daemon = daemon_cls() if daemon_cls is RoundRobinDaemon \
            else daemon_cls(seed=7)
        sched = AsynchronousScheduler(net, proto, daemon,
                                      use_schema=use_schema,
                                      dirty_aware=dirty_aware)
        sched.run(25)
        inj = FaultInjector(net, seed=campaign_seed)
        inj.corrupt_random_nodes(2, fraction=0.5)
        r = sched.run(2500, stop_when=first_alarm)
        return (r, sched.rounds, sched.activations, net.alarms(),
                {v: dict(regs) for v, regs in net.registers.items()})

    ref = run(False, False)
    for use_schema, dirty_aware in [(False, True), (True, False),
                                    (True, True)]:
        assert run(use_schema, dirty_aware) == ref, (use_schema, dirty_aware)


def test_async_dirty_aware_skips_quiescent_nodes():
    """On an accepting 1-round PLS run the dirty-aware scheduler provably
    skips re-steps (each node executes once per run, the rest skip) while
    producing the identical outcome."""
    from repro.baselines.pls_sqlog import SqLogPlsProtocol, sqlog_labels

    g = random_connected_graph(14, 24, seed=5)
    labels = sqlog_labels(g)

    def run(dirty_aware):
        net = Network(g)
        net.install(labels)
        sched = AsynchronousScheduler(net, SqLogPlsProtocol(),
                                      PermutationDaemon(seed=1),
                                      dirty_aware=dirty_aware)
        r = sched.run(30)
        return (r, sched.rounds, sched.activations, net.alarms(),
                {v: dict(regs) for v, regs in net.registers.items()},
                sched.steps_skipped)

    naive = run(False)
    aware = run(True)
    assert naive[:5] == aware[:5]
    assert naive[5] == 0
    # every activation after each node's first no-op step is skipped
    assert aware[5] >= aware[2] - 2 * g.n


def test_fault_recipes_storage_independent(campaign_seed):
    """The fault injector's rng draws must not depend on the storage
    backend's iteration order: the same seed corrupts the same registers
    to the same values under both representations."""
    g = random_connected_graph(10, 16, seed=3)
    marker = run_marker(g)

    def corrupted(use_schema):
        net = make_network(g, marker)
        proto = MstVerifierProtocol(synchronous=True)
        sched = SynchronousScheduler(net, proto, use_schema=use_schema)
        sched.run(10)
        inj = FaultInjector(net, seed=campaign_seed)
        inj.scramble_node(g.nodes()[0])
        inj.corrupt_random_nodes(2, fraction=0.4)
        return {v: dict(regs) for v, regs in net.registers.items()}

    assert corrupted(True) == corrupted(False)


def test_hybrid_storage_differential(campaign_seed):
    """The hybrid protocol (replicated bottom pieces + top train) is
    storage-equivalent through a cold adversarial start."""
    from repro.graphs.mst_reference import kruskal_mst
    from repro.verification.adversary import (labels_for_claimed_tree,
                                              swap_one_mst_edge)

    g = random_connected_graph(14, 24, seed=campaign_seed % 911)
    wrong = swap_one_mst_edge(g, kruskal_mst(g))
    assert wrong is not None
    labels = hybrid_labels(labels_for_claimed_tree(g, wrong))

    def run(use_schema):
        net = Network(g)
        net.install(labels)
        proto = HybridVerifierProtocol(synchronous=True)
        sched = SynchronousScheduler(net, proto, use_schema=use_schema)
        r = sched.run(5000, stop_when=first_alarm)
        return (r, net.alarms(),
                {v: dict(regs) for v, regs in net.registers.items()})

    a, b = run(True), run(False)
    assert a == b
    assert a[1], "hybrid must reject the adversarial labeling"


def test_protocol_shared_across_schedulers_rebinds():
    """A protocol instance handed to a second scheduler (different
    storage, different network) is re-bound before each run, so neither
    scheduler runs with the other's handles or label caches."""
    g1 = random_connected_graph(10, 16, seed=1)
    g2 = random_connected_graph(10, 16, seed=2)
    proto = MstVerifierProtocol(synchronous=True)
    net1, net2 = make_network(g1), make_network(g2)
    s1 = SynchronousScheduler(net1, proto, use_schema=False)
    s2 = SynchronousScheduler(net2, proto, use_schema=True)
    # interleave: each run must rebind to its own storage
    s1.run(3)
    s2.run(3)
    s1.run(3)
    s2.run(3)
    assert not net1.alarms() and not net2.alarms()

    # reference: fresh protocols, same schedules
    for g, use_schema, net in ((g1, False, net1), (g2, True, net2)):
        ref_net = make_network(g)
        ref = SynchronousScheduler(ref_net, MstVerifierProtocol(
            synchronous=True), use_schema=use_schema)
        ref.run(6)
        assert {v: dict(r) for v, r in ref_net.registers.items()} == \
            {v: dict(r) for v, r in net.registers.items()}
