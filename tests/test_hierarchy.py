"""Hierarchy structures (Definitions 5.1/5.2, Lemma 5.1)."""

import pytest

from repro.graphs import GraphError, WeightedGraph
from repro.graphs.generators import random_connected_graph
from repro.graphs.spanning import RootedTree
from repro.hierarchy import (Fragment, Hierarchy, minimum_outgoing_edge,
                             outgoing_edges)
from repro.mst import run_sync_mst


def tiny_graph():
    g = WeightedGraph()
    for u, v, w in [(1, 2, 1), (2, 3, 2), (3, 4, 3), (1, 4, 9)]:
        g.add_edge(u, v, w)
    return g


def tiny_tree(g):
    return RootedTree(g, 1, {1: None, 2: 1, 3: 2, 4: 3})


class TestOutgoing:
    def test_outgoing_edges(self):
        g = tiny_graph()
        out = outgoing_edges(g, frozenset({1, 2}))
        assert sorted((u, v) for u, v, _ in out) == [(1, 4), (2, 3)]

    def test_minimum_outgoing(self):
        g = tiny_graph()
        assert minimum_outgoing_edge(g, frozenset({1, 2}))[2] == 2

    def test_spanning_set_has_none(self):
        g = tiny_graph()
        assert minimum_outgoing_edge(g, frozenset({1, 2, 3, 4})) is None


class TestHierarchyQueries:
    @pytest.fixture(scope="class")
    def built(self):
        g = random_connected_graph(20, 34, seed=17)
        return run_sync_mst(g).hierarchy

    def test_fragments_of_sorted(self, built):
        for v in built.graph.nodes():
            levels = [f.level for f in built.fragments_of(v)]
            assert levels == sorted(levels)
            assert levels[0] == 0
            assert levels[-1] == built.height

    def test_fragment_at_level(self, built):
        v = built.graph.nodes()[0]
        assert v in built.fragment_at_level(v, 0).nodes
        assert built.fragment_at_level(v, built.height).size == built.graph.n

    def test_levels_of_matches(self, built):
        for v in built.graph.nodes():
            assert built.levels_of(v) == \
                [f.level for f in built.fragments_of(v)]

    def test_parent_links_nested(self, built):
        for frag in built.fragments:
            if frag.parent is not None:
                assert frag.nodes < frag.parent.nodes
                assert frag in frag.parent.children

    def test_whole_tree_fragment(self, built):
        whole = built.whole_tree_fragment
        assert whole.size == built.graph.n
        assert whole.parent is None


class TestValidation:
    def test_missing_singletons_rejected(self):
        g = tiny_graph()
        t = tiny_tree(g)
        frags = [Fragment(root=1, level=1,
                          nodes=frozenset({1, 2, 3, 4}))]
        with pytest.raises(GraphError):
            Hierarchy(t, frags).validate()

    def test_laminarity_violation_rejected(self):
        g = tiny_graph()
        t = tiny_tree(g)
        frags = [
            Fragment(root=v, level=0, nodes=frozenset({v}),
                     candidate_edge=(v, t.parent[v] or 2),
                     candidate_weight=1)
            for v in g.nodes()
        ]
        frags += [
            Fragment(root=1, level=1, nodes=frozenset({1, 2, 3}),
                     candidate_edge=(3, 4), candidate_weight=3),
            Fragment(root=2, level=1, nodes=frozenset({2, 3, 4}),
                     candidate_edge=(2, 1), candidate_weight=1),
            Fragment(root=1, level=2, nodes=frozenset({1, 2, 3, 4})),
        ]
        with pytest.raises(GraphError):
            Hierarchy(t, frags).validate()

    def test_candidate_not_outgoing_rejected(self):
        g = tiny_graph()
        t = tiny_tree(g)
        frags = [
            Fragment(root=v, level=0, nodes=frozenset({v}))
            for v in g.nodes()
        ]
        frags.append(Fragment(root=1, level=1,
                              nodes=frozenset({1, 2, 3, 4})))
        # singletons lack candidates entirely
        with pytest.raises(GraphError):
            Hierarchy(t, frags).validate()

    def test_minimality_detects_bad_candidate(self):
        from repro.hierarchy import outgoing_edges

        g = random_connected_graph(12, 20, seed=3)
        h = run_sync_mst(g).hierarchy
        assert h.verify_minimality()
        # repoint some fragment's candidate at a heavier outgoing edge
        for frag in h.fragments:
            if frag.candidate_edge is None:
                continue
            out = sorted(outgoing_edges(g, frag.nodes), key=lambda e: e[2])
            if len(out) >= 2:
                frag.candidate_edge = (out[-1][0], out[-1][1])
                break
        else:  # pragma: no cover
            pytest.skip("no fragment with two outgoing edges")
        assert not h.verify_minimality()
