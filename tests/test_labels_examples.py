"""The warm-up 1-proof labeling schemes (Section 2.6)."""

import pytest

from repro.graphs.generators import random_connected_graph
from repro.graphs.spanning import RootedTree
from repro.graphs.mst_reference import kruskal_mst
from repro.labels import EDIAM_SCHEME, NUMK_SCHEME, SP_SCHEME
from repro.labels.examples import ediam_marker


def make_tree(seed=0, n=18):
    g = random_connected_graph(n, n, seed=seed)
    return RootedTree.from_edges(g, kruskal_mst(g), g.nodes()[0])


@pytest.mark.parametrize("scheme", [SP_SCHEME, NUMK_SCHEME, EDIAM_SCHEME])
def test_accepts_correct_labels(scheme):
    tree = make_tree()
    marker = scheme.marker(tree)
    assert scheme.verify_all(tree.graph, marker.labels) == {}


@pytest.mark.parametrize("scheme", [SP_SCHEME, NUMK_SCHEME, EDIAM_SCHEME])
def test_construction_time_linear(scheme):
    tree = make_tree()
    marker = scheme.marker(tree)
    assert marker.construction_rounds <= 2 * tree.graph.n + 1


class TestSpScheme:
    def test_rejects_wrong_root(self):
        tree = make_tree(seed=1)
        labels = SP_SCHEME.marker(tree).labels
        victim = tree.nodes()[2]
        labels[victim] = dict(labels[victim])
        labels[victim]["sp_root"] = 10 ** 6
        assert SP_SCHEME.verify_all(tree.graph, labels)

    def test_rejects_wrong_distance(self):
        tree = make_tree(seed=2)
        labels = SP_SCHEME.marker(tree).labels
        leaf = max(tree.nodes(), key=lambda v: tree.depth[v])
        labels[leaf] = dict(labels[leaf])
        labels[leaf]["sp_dist"] += 5
        assert SP_SCHEME.verify_all(tree.graph, labels)

    def test_rejects_fake_cycle(self):
        """Two nodes pointing at each other with crafted distances."""
        tree = make_tree(seed=3)
        labels = {v: dict(r) for v, r in SP_SCHEME.marker(tree).labels.items()}
        # any manipulation creating a second 'root' breaks agreement
        v = tree.nodes()[4]
        labels[v]["sp_dist"] = 0
        labels[v]["sp_parent"] = None
        assert SP_SCHEME.verify_all(tree.graph, labels)


class TestNumkScheme:
    def test_rejects_wrong_n(self):
        tree = make_tree(seed=4)
        labels = {v: dict(r) for v, r in NUMK_SCHEME.marker(tree).labels.items()}
        for v in tree.nodes():
            labels[v]["nk_n"] = tree.graph.n + 1
        # globally consistent wrong n still fails at the root aggregation
        assert NUMK_SCHEME.verify_all(tree.graph, labels)

    def test_rejects_wrong_subtree_count(self):
        tree = make_tree(seed=5)
        labels = {v: dict(r) for v, r in NUMK_SCHEME.marker(tree).labels.items()}
        labels[tree.root]["nk_sub"] += 1
        assert NUMK_SCHEME.verify_all(tree.graph, labels)


class TestEdiamScheme:
    def test_accepts_slack(self):
        tree = make_tree(seed=6)
        marker = ediam_marker(tree, slack=4)
        assert EDIAM_SCHEME.verify_all(tree.graph, marker.labels) == {}

    def test_rejects_bound_below_height(self):
        tree = make_tree(seed=7)
        labels = {v: dict(r) for v, r in ediam_marker(tree).labels.items()}
        for v in tree.nodes():
            labels[v]["ed_bound"] = tree.height() - 1
        if tree.height() >= 1:
            assert EDIAM_SCHEME.verify_all(tree.graph, labels)

    def test_rejects_disagreeing_bounds(self):
        tree = make_tree(seed=8)
        labels = {v: dict(r) for v, r in ediam_marker(tree).labels.items()}
        labels[tree.nodes()[3]]["ed_bound"] += 1
        assert EDIAM_SCHEME.verify_all(tree.graph, labels)
