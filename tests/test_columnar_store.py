"""Unit tests for the columnar register store (``repro.sim.columnar``).

The differential tests prove backend equivalence end-to-end; these pin
the columnar-specific mechanics: sentinel encoding and graceful
overflow (nothing may ever raise out of ``array('q')``), interning,
facade/view semantics, the conservative dirty tracking the schedulers
build on, and the locality-batching daemon's shape.
"""

import pytest

from repro.graphs.generators import random_connected_graph
from repro.sim import (FaultInjector, LocalityBatchDaemon, Network,
                      RegisterSchema, RegisterView, SynchronousScheduler,
                      register_bits)
from repro.sim.columnar import (BOX_S, ColumnStore, ColumnarNodeContext,
                                ColumnarNodeFacade, NONE_S, PoolColumn,
                                UNSET_S)
from repro.sim.registers import compile_schema
from repro.verification import make_network
from repro.verification.verifier import MstVerifierProtocol


def _schema():
    schema = RegisterSchema()
    schema.declare("count", "nat", 0)
    schema.declare("label", "str", None, stable=True)
    schema.declare("piece", "tuple", None)
    schema.declare("blob", "opaque", None)
    return schema


def _store(n=4):
    compiled = compile_schema(_schema())
    return ColumnStore(compiled, list(range(n))), compiled


class _FakeNet:
    def __init__(self, graph):
        self.graph = graph


def _ctx(store, node=0):
    g = random_connected_graph(store.n, store.n + 2, seed=1)
    return ColumnarNodeContext(_FakeNet(g), node, store)


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------

def test_nat_column_roundtrips_every_shape():
    """Ints (any sign), None, bools, huge ints, strings, tuples — a nat
    column accepts and returns them all exactly (type included)."""
    store, compiled = _store()
    slot = compiled.slot("count")
    values = [0, 7, -3, None, True, False, 1 << 70, -(1 << 70),
              "garbage", ("a", 1), 3.5]
    for i, value in enumerate(values[:store.n]):
        store.set_value(i, slot, value)
        got = store.get_value(i, slot, "<default>")
        assert got == value and type(got) is type(value)
    # overwrite boxed with a plain int: sentinel path wins again AND the
    # stale overflow entry is dropped (no dead weight for snapshots)
    store.set_value(0, slot, "junk")
    assert store.overflow[slot]
    store.set_value(0, slot, 5)
    assert store.get_value(0, slot) == 5
    assert 0 not in store.overflow[slot]
    ctx = _ctx(store)
    ctx.set(slot, "junk2")
    ctx.set(slot, 6)
    assert ctx.get(slot) == 6
    assert 0 not in store.overflow[slot]


def test_pool_column_interns_and_boxes():
    store, compiled = _store()
    slot = compiled.slot("piece")
    store.set_value(0, slot, (1, 2, 3))
    store.set_value(1, slot, (1, 2, 3))
    col = store.data[slot]
    assert type(col) is PoolColumn
    assert col[0] == col[1] >= 0                       # interned, shared
    assert store.get_value(0, slot) is store.get_value(1, slot)
    store.set_value(2, slot, [1, 2])                   # unhashable junk
    assert col[2] == BOX_S
    assert store.get_value(2, slot) == [1, 2]
    store.set_value(3, slot, None)
    assert col[3] == NONE_S
    assert store.get_value(3, slot, "<d>") is None
    assert store.data[compiled.slot("count")][0] == UNSET_S


def test_facade_and_view_mapping_semantics():
    store, compiled = _store()
    facade = ColumnarNodeFacade(store, 1)
    view = RegisterView(facade)
    view["count"] = 4
    view["label"] = "abc"
    view["ghost_free"] = "extra"          # undeclared -> extras
    assert dict(view) == {"count": 4, "label": "abc",
                          "ghost_free": "extra"}
    assert len(view) == 3 and "count" in view
    assert register_bits(view) == view.file.bits()
    del view["count"]
    assert "count" not in view
    with pytest.raises(KeyError):
        del view["count"]
    view.clear()
    assert dict(view) == {}


def test_stable_epoch_tracks_label_writes():
    store, compiled = _store()
    ctx = _ctx(store)
    before = store.stable_epoch
    ctx.set(compiled.slot("count"), 9)     # not stable
    assert store.stable_epoch == before
    ctx.set(compiled.slot("label"), "x")   # stable
    assert store.stable_epoch == before + 1
    s1 = ctx.stable_sentinel()
    assert ctx.stable_sentinel() == s1     # cached, epoch unchanged
    ctx.set(compiled.slot("label"), "y")
    assert ctx.stable_sentinel() != s1


def test_conservative_dirty_marking():
    store, compiled = _store()
    ctx = _ctx(store)
    assert not ctx.wrote
    ctx.set(compiled.slot("count"), 0)     # same value as default: still
    assert ctx.wrote                       # a write (conservative)
    assert store.dirty_cols[compiled.slot("count")]
    facade = ColumnarNodeFacade(store, 2)
    facade.set_name("count", 3)            # facade writes mark the node
    assert 2 in store.dirty_node_list
    store.clear_dirty()
    assert not store.dirty_node_list
    assert not any(store.dirty_cols)


def test_serialize_restore_roundtrips_pool_and_overflow_exactly():
    """Checkpoint round-trip (satellite fix): restored pool ids must be
    the original ids — a circulating piece re-interned after restore
    resolves to its old id instead of re-validating into a duplicate —
    the typed-pool split for ==-equal values of different types must
    survive, and boxed overflow (unhashable junk, beyond-int64 nats)
    must come back exactly."""
    import pickle

    store, compiled = _store()
    piece = compiled.slot("piece")
    count = compiled.slot("count")
    label = compiled.slot("label")
    store.set_value(0, piece, (1, 1))
    store.set_value(1, piece, (1, True))     # ==-equal, typed pool
    store.set_value(2, piece, [9, 9])        # unhashable: boxed
    store.set_value(3, piece, (1, 1))        # re-interned: id of row 0
    store.set_value(0, count, 1 << 70)       # beyond int64: boxed
    store.set_value(1, count, 7)
    store.set_value(2, label, "stable")      # bumps the stable epoch
    ctx = _ctx(store, node=2)
    assert ctx.stable_sentinel() is not None  # warm a decode memo

    state = pickle.loads(pickle.dumps(store.serialize()))
    fresh = ColumnStore(compiled, list(store.nodes))
    fresh.set_value(0, piece, ("pre-existing", 3))  # must be overwritten
    fresh.restore_serialized(state)

    for slot in range(compiled.size):
        assert list(fresh.data[slot]) == list(store.data[slot]), slot
    assert fresh.pool_values == store.pool_values
    assert fresh.overflow == store.overflow
    assert fresh.extras == store.extras
    assert list(fresh.stable_versions) == list(store.stable_versions)
    assert fresh.stable_epoch == store.stable_epoch
    # re-interning circulating values: original ids, no pool growth
    pool_len = len(fresh.pool_values)
    assert fresh.intern((1, 1)) == store.data[piece][0]
    assert fresh.intern((1, True)) == store.data[piece][1]
    assert fresh.intern("stable") == store.data[label][2]
    assert len(fresh.pool_values) == pool_len
    # values and their exact types round-trip
    got0 = fresh.get_value(0, piece)
    got1 = fresh.get_value(1, piece)
    assert got0 == (1, 1) and type(got0[1]) is int
    assert got1 == (1, True) and type(got1[1]) is bool
    assert fresh.get_value(2, piece) == [9, 9]
    assert fresh.get_value(0, count) == 1 << 70
    assert fresh.get_value(1, count) == 7
    # dirty tracking restarts clean after a restore
    assert not fresh.dirty_node_list and not any(fresh.dirty_cols)


def test_restore_serialized_validates_before_mutating():
    """A payload for another layout raises and leaves the store
    untouched (the warm-start path then settles cold off a clean
    network)."""
    store, compiled = _store()
    store.set_value(0, compiled.slot("count"), 5)
    state = store.serialize()

    other_schema = RegisterSchema()
    other_schema.declare("different", "nat", 0)
    other = ColumnStore(compile_schema(other_schema), list(range(4)))
    with pytest.raises(ValueError):
        other.restore_serialized(state)
    assert other.get_value(0, 0, "<unset>") == "<unset>"

    small = ColumnStore(compiled, list(range(3)))   # node-count mismatch
    with pytest.raises(ValueError):
        small.restore_serialized(state)

    target, _ = _store()
    target.set_value(0, compiled.slot("label"), "keep")
    bad = dict(state)
    bad["pool"] = state["pool"] + ["tampered"]      # wrong pool is fine,
    bad["cols"] = state["cols"][:-1]                # wrong shape is not
    with pytest.raises(ValueError):
        target.restore_serialized(bad)
    assert target.get_value(0, compiled.slot("label")) == "keep"


def test_snapshot_fork_and_refresh():
    store, compiled = _store()
    slot = compiled.slot("count")
    store.set_value(0, slot, 11)
    snap = store.fork()
    store.clear_dirty()
    store.set_value(0, slot, 22)
    assert snap.data[slot][0] == 11        # snapshot is isolated
    snap.refresh_from(store)               # dirty columns only
    assert snap.data[slot][0] == 22
    # pooled column copies keep their marker type through refresh
    assert type(snap.data[compiled.slot("piece")]) is PoolColumn


# ---------------------------------------------------------------------------
# fault injection through declared kinds (regression: satellite fix)
# ---------------------------------------------------------------------------

def test_fault_injection_into_nat_columns_degrades_gracefully():
    """Corrupting writes of non-int values into nat columns must not
    raise from ``array('q')``: they box into the overflow, round-trip
    exactly, keep the bit accounting identical to the dict backend, and
    further perturbation of the planted junk keeps working."""
    g = random_connected_graph(10, 16, seed=3)

    def corrupt(storage):
        net = make_network(g)
        proto = MstVerifierProtocol(synchronous=True)
        sched = SynchronousScheduler(net, proto, storage=storage)
        sched.run(5)
        inj = FaultInjector(net, seed=41)
        v = g.nodes()[0]
        # plant junk of every shape in nat-declared registers
        inj.corrupt_register(v, "dist", value="not-an-int")
        inj.corrupt_register(v, "tcount", value=1 << 70)
        inj.corrupt_register(v, "st", value=True)
        inj.corrupt_register(v, "tt_wd", value=("tuple", "junk"))
        # ...and in a tuple-declared register
        inj.corrupt_register(v, "pc_top", value="stringy")
        # perturbation mode must now coerce *through* the planted shape
        inj.corrupt_register(v, "dist")
        inj.corrupt_register(v, "tcount")
        inj.corrupt_register(v, "st")
        return ({u: dict(r) for u, r in net.registers.items()},
                net.max_memory_bits(), net.total_memory_bits())

    ref = corrupt("dict")
    assert corrupt("schema") == ref
    assert corrupt("columnar") == ref


def test_detection_survives_boxed_label_corruption():
    """A columnar-backed verifier still detects after junk-typed label
    corruption (the overflow path is not a dead end)."""
    from repro.sim import first_alarm
    g = random_connected_graph(12, 20, seed=7)
    net = make_network(g)
    proto = MstVerifierProtocol(synchronous=True)
    sched = SynchronousScheduler(net, proto, storage="columnar")
    sched.run(30)
    assert not net.alarms()
    inj = FaultInjector(net, seed=2)
    inj.corrupt_register(g.nodes()[3], "roots", value=12345)  # int in str
    sched.run(5000, stop_when=first_alarm)
    assert net.alarms(), "corrupted Roots string must be detected"


def test_pool_keeps_equal_values_of_different_types_apart():
    """``True == 1`` and ``2.0 == 2`` in Python: interning must not hand
    a later write back as an earlier ==-equal value of another type —
    contents, types, bit accounting, and nat coercion must match the
    other backends exactly, nested types included."""
    from repro.sim import bit_size, nat_value
    store, compiled = _store()
    slot = compiled.slot("piece")
    pairs = [(1, True), (2.0, 2), ((1, 1), (1, True))]
    for i, (a, b) in enumerate(pairs):
        store.set_value(i, slot, a)
        other = (i + 1) % store.n
        store.set_value(other, slot, b)
        got_a = store.get_value(i, slot)
        got_b = store.get_value(other, slot)
        assert got_a is a or got_a == a and type(got_a) is type(a)
        assert got_b is b or got_b == b and type(got_b) is type(b)
        assert bit_size(got_a) == bit_size(a)
        assert bit_size(got_b) == bit_size(b)
        assert nat_value(got_b) == nat_value(b)


def test_context_set_boxes_unhashable_into_pool_column():
    """ctx.set of an unhashable value into a str/tuple column must box
    like the facade path, not raise out of the pool lookup (a corrupted
    piece with a mutable element reaches ctx.set via the broadcast)."""
    store, compiled = _store()
    ctx = _ctx(store)
    slot = compiled.slot("piece")
    junk = ((1, 2, [3]), True)     # tuple containing a list: unhashable
    ctx.set(slot, junk)
    assert ctx.get(slot) == junk
    assert store.data[slot][0] == BOX_S


def test_rotation_settled_matches_dict_on_boxed_rot():
    """A huge int planted in the `_rot` ghost register settles under
    every storage (the dict expression reads it raw; the columnar branch
    must resolve the boxed entry the same way)."""
    from repro.trains.comparison import rotation_settled
    g = random_connected_graph(8, 12, seed=2)

    def settled(storage):
        net = make_network(g)
        proto = MstVerifierProtocol(synchronous=True)
        sched = SynchronousScheduler(net, proto, storage=storage)
        sched.run(2)
        for v in g.nodes():
            net.registers[v]["_rot"] = 1 << 62   # beyond int64 packing
        return rotation_settled(net)

    assert settled("dict") is settled("schema") is settled("columnar") \
        is True


def test_alarm_latches_under_packed_alarm_kind():
    """A protocol declaring the alarm register with a packed kind still
    latches and reports alarms on the columnar backend."""
    from repro.sim import ALARM, Network, Protocol

    class StrAlarm(Protocol):
        def register_schema(self):
            schema = RegisterSchema()
            schema.declare(ALARM, "str", None)
            return schema

        def bind_registers(self, compiled):
            pass

        def step(self, ctx):
            ctx.alarm("first")
            ctx.alarm("second")    # must not overwrite the latch

    g = random_connected_graph(6, 8, seed=1)
    net = Network(g)
    sched = SynchronousScheduler(net, StrAlarm(), storage="columnar")
    sched.run(1)
    assert net.has_alarm()
    assert set(net.alarms().values()) == {"first"}


# ---------------------------------------------------------------------------
# locality-batching daemon
# ---------------------------------------------------------------------------

def test_locality_daemon_batches_closed_neighbourhoods():
    g = random_connected_graph(10, 16, seed=5)
    daemon = LocalityBatchDaemon(g, seed=0)
    nodes = g.nodes()
    seen_centers = []
    for _ in range(len(nodes)):
        batch = daemon.next_batch(nodes)
        center = batch[0]
        seen_centers.append(center)
        assert batch[1:] == g.neighbors(center)
    # one full sweep: every node was a center exactly once
    assert sorted(seen_centers) == sorted(nodes)
    assert daemon.batches == len(nodes)
    # and the next sweep reshuffles but still covers everything
    second = [daemon.next_batch(nodes)[0] for _ in range(len(nodes))]
    assert sorted(second) == sorted(nodes)
