"""Unit tests for the weighted-graph substrate."""

import pytest

from repro.graphs import GraphError, WeightedGraph, edge_key
from repro.graphs.generators import complete_graph, path_graph, ring_graph


def small_graph():
    g = WeightedGraph()
    g.add_edge(1, 2, 5)
    g.add_edge(2, 3, 7)
    g.add_edge(1, 3, 9)
    return g


class TestConstruction:
    def test_nodes_and_edges(self):
        g = small_graph()
        assert g.n == 3
        assert g.m == 3
        assert sorted(g.nodes()) == [1, 2, 3]

    def test_weight_lookup(self):
        g = small_graph()
        assert g.weight(1, 2) == 5
        assert g.weight(2, 1) == 5

    def test_missing_edge_raises(self):
        g = small_graph()
        g.add_node(4)
        with pytest.raises(GraphError):
            g.weight(1, 4)

    def test_duplicate_edge_rejected(self):
        g = small_graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 2, 11)

    def test_self_loop_rejected(self):
        g = WeightedGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1, 1)

    def test_add_node_idempotent(self):
        g = WeightedGraph()
        g.add_node(1)
        g.add_node(1)
        assert g.n == 1


class TestPorts:
    def test_ports_in_insertion_order(self):
        g = small_graph()
        assert g.port(1, 2) == 0
        assert g.port(1, 3) == 1
        assert g.neighbor_at_port(1, 0) == 2
        assert g.neighbor_at_port(1, 1) == 3

    def test_ports_independent_per_endpoint(self):
        g = WeightedGraph()
        g.add_edge(1, 2, 1)
        g.add_edge(3, 2, 2)
        # at node 2, ports follow node-2's insertion order
        assert g.port(2, 1) == 0
        assert g.port(2, 3) == 1

    def test_neighbors_in_port_order(self):
        g = small_graph()
        assert g.neighbors(1) == [2, 3]


class TestStructure:
    def test_connectivity(self):
        g = small_graph()
        assert g.is_connected()
        g.add_node(99)
        assert not g.is_connected()

    def test_empty_graph_connected(self):
        assert WeightedGraph().is_connected()

    def test_diameter_path(self):
        assert path_graph(6).diameter() == 5

    def test_diameter_complete(self):
        assert complete_graph(5).diameter() == 1

    def test_diameter_disconnected_raises(self):
        g = small_graph()
        g.add_node(99)
        with pytest.raises(GraphError):
            g.diameter()

    def test_distinct_weights(self):
        g = small_graph()
        assert g.has_distinct_weights()
        g.add_edge(2, 4, 5)
        assert not g.has_distinct_weights()

    def test_max_degree(self):
        assert ring_graph(6).max_degree() == 2
        assert WeightedGraph().max_degree() == 0

    def test_bfs_distances(self):
        g = path_graph(5)
        dist = g.bfs_distances(0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_copy_is_independent(self):
        g = small_graph()
        h = g.copy()
        h.add_edge(1, 4, 20)
        assert g.n == 3 and h.n == 4
        assert g.edge_set() != h.edge_set()

    def test_edges_canonical(self):
        g = small_graph()
        for u, v, _ in g.edges():
            assert u < v

    def test_edge_key(self):
        assert edge_key(5, 2) == (2, 5)
        assert edge_key(2, 5) == (2, 5)

    def test_total_weight(self):
        g = small_graph()
        assert g.total_weight([(1, 2), (2, 3)]) == 12
