"""Shared fixtures for the test suite.

``campaign_seed`` is the one knob behind every randomized sweep: the
default is pinned so CI is deterministic, and ``REPRO_TEST_SEED=<int>``
re-randomizes the whole matrix (topologies, fault sites, daemon
schedules) in one move.  ``campaign_workers`` sizes the multiprocessing
fan-out of campaign-driven tests (``REPRO_TEST_WORKERS`` overrides).
"""

import os

import pytest


@pytest.fixture(scope="session")
def campaign_seed() -> int:
    return int(os.environ.get("REPRO_TEST_SEED", "0"))


@pytest.fixture(scope="session")
def campaign_workers() -> int:
    return int(os.environ.get("REPRO_TEST_WORKERS", "2"))
