"""Manifest/resume tests: shard+index durability, truncated-tail
tolerance, record round-trips, resume-skips-completed semantics, and
the merged dump of an interrupted-and-resumed campaign matching an
uninterrupted run on every deterministic field."""

import json
import multiprocessing

import pytest

from repro.engine import (CampaignManifest, CampaignRunner,
                          ManifestWarning, ScenarioSpec, axis, grid,
                          run_scenario, scenario_record)
from repro.engine.manifest import result_from_record

START_METHODS = ["fork", "spawn"] if "fork" in \
    multiprocessing.get_all_start_methods() else ["spawn"]

#: fields that legitimately differ between an uninterrupted run and an
#: interrupted-and-resumed one
NONDETERMINISTIC = {"wall_time", "attempts", "cache_hit",
                    "settle_rounds_saved"}


def tiny_grid(seed=11):
    return grid(topologies=[axis("path", n=6), axis("ring", n=6)],
                faults=[axis("none"), axis("corrupt", count=1)],
                schedules=[axis("sync")], seed=seed,
                completeness_rounds=20, max_rounds=2000)


def deterministic(rec):
    return {k: v for k, v in rec.items() if k not in NONDETERMINISTIC}


class TestShardWriter:
    def test_round_trip_through_shards_and_index(self, tmp_path):
        specs = tiny_grid()
        manifest = CampaignManifest(str(tmp_path / "m"))
        with manifest.open_writer() as writer:
            for spec in specs:
                writer.append(scenario_record(run_scenario(spec)))
        assert writer.written == len(specs)
        completed = manifest.completed()
        assert set(completed) == {(s.key, s.seed) for s in specs}
        assert all(e["status"] == "ok" for e in completed.values())
        records = manifest.records()
        assert set(records) == set(completed)

    def test_each_run_gets_its_own_shard(self, tmp_path):
        specs = tiny_grid()
        manifest = CampaignManifest(str(tmp_path / "m"))
        with manifest.open_writer() as w1:
            w1.append(scenario_record(run_scenario(specs[0])))
        with manifest.open_writer() as w2:
            w2.append(scenario_record(run_scenario(specs[1])))
        assert w1.shard_name != w2.shard_name
        assert len(manifest.completed()) == 2

    def test_truncated_tail_line_is_skipped_not_fatal(self, tmp_path):
        specs = tiny_grid()
        manifest = CampaignManifest(str(tmp_path / "m"))
        with manifest.open_writer() as writer:
            for spec in specs[:2]:
                writer.append(scenario_record(run_scenario(spec)))
        # simulate the wreckage a kill -9 leaves: a half-written line
        with open(manifest.manifest_path, "a") as fh:
            fh.write('{"key": "path(n=6)/none/sy')
        with pytest.warns(ManifestWarning):
            completed = manifest.completed()
        assert len(completed) == 2      # the torn cell counts missing

    def test_later_index_entries_win(self, tmp_path):
        spec = tiny_grid()[0]
        manifest = CampaignManifest(str(tmp_path / "m"))
        first = scenario_record(run_scenario(spec))
        first["attempts"] = 1
        second = dict(first, attempts=2)
        with manifest.open_writer() as writer:
            writer.append(first)
            writer.append(second)
        entry = manifest.completed()[(spec.key, spec.seed)]
        assert entry["attempts"] == 2


class TestRecordRoundTrip:
    def test_result_from_record_preserves_every_recorded_field(self):
        spec = ScenarioSpec(topology=axis("random", n=10, extra=6),
                            fault=axis("corrupt", count=1),
                            seed=4, max_rounds=4000)
        rec = json.loads(json.dumps(scenario_record(run_scenario(spec))))
        rebuilt = scenario_record(result_from_record(spec, rec))
        assert rebuilt == rec

    def test_error_record_round_trips(self):
        spec = ScenarioSpec(topology=axis("no_such_family"), seed=1)
        from repro.engine.supervise import _run_one
        rec = json.loads(json.dumps(scenario_record(_run_one(spec))))
        rebuilt = result_from_record(spec, rec)
        assert rebuilt.status == "error"
        assert rebuilt.error_type == rec["error_type"]
        assert list(rebuilt.error_trace) == rec["error_trace"]


class TestResume:
    def test_resume_reruns_only_missing_cells(self, tmp_path):
        specs = tiny_grid()
        root = str(tmp_path / "m")
        # first run covers only half the campaign, as if killed mid-way
        partial = CampaignRunner(workers=1, manifest=root)
        partial.run(specs[:2])
        executed = []
        resumed_runner = CampaignRunner(workers=1, manifest=root,
                                        resume=True)
        result = resumed_runner.run(
            specs, progress=lambda d, t, r: executed.append(r))
        assert result.resumed == 2
        assert len(result) == len(specs)
        assert "resumed from manifest" in result.summary()
        # the manifest now covers everything: a second resume runs none
        again = CampaignRunner(workers=1, manifest=root,
                               resume=True).run(specs)
        assert again.resumed == len(specs)

    def test_merged_dump_matches_uninterrupted_run(self, tmp_path):
        specs = tiny_grid()
        baseline = CampaignRunner(workers=1).run(specs)
        base_records = [scenario_record(r) for r in baseline]

        root = str(tmp_path / "m")
        CampaignRunner(workers=1, manifest=root).run(specs[:3])
        CampaignRunner(workers=1, manifest=root,
                       resume=True).run(specs)
        manifest = CampaignManifest(root)
        merged = manifest.merge_records(specs)
        assert len(merged) == len(specs)
        for base, got in zip(base_records, merged):
            assert deterministic(base) == deterministic(got)

    @pytest.mark.parametrize("method", START_METHODS)
    def test_supervised_resume_matches_uninterrupted_run(
            self, tmp_path, method):
        """The acceptance flow under both start methods: a campaign
        interrupted mid-run and resumed through supervised workers
        merges to the same deterministic fields as an uninterrupted
        run."""
        specs = tiny_grid()
        baseline = CampaignRunner(workers=2, mp_context=method).run(specs)
        base_records = [scenario_record(r) for r in baseline]

        root = str(tmp_path / "m")
        interrupted = []

        def interrupt(done, total, result):
            interrupted.append(result)
            if done >= 2:
                raise KeyboardInterrupt

        from repro.engine import CampaignInterrupted
        with pytest.raises(CampaignInterrupted):
            CampaignRunner(workers=2, mp_context=method,
                           manifest=root).run(specs, progress=interrupt)
        survivors = len(CampaignManifest(root).completed())
        assert 2 <= survivors < len(specs)

        result = CampaignRunner(workers=2, mp_context=method,
                                manifest=root, resume=True).run(specs)
        assert result.resumed == survivors
        merged = CampaignManifest(root).merge_records(specs)
        assert [deterministic(r) for r in merged] == \
            [deterministic(r) for r in base_records]

    def test_merge_to_writes_spec_ordered_jsonl(self, tmp_path):
        specs = tiny_grid()
        root = str(tmp_path / "m")
        CampaignRunner(workers=1, manifest=root).run(specs)
        out = tmp_path / "merged.jsonl"
        count = CampaignManifest(root).merge_to(str(out), specs)
        assert count == len(specs)
        keys = [json.loads(line)["key"]
                for line in out.read_text().splitlines()]
        assert keys == [s.key for s in specs]

    def test_resume_requires_manifest(self):
        with pytest.raises(ValueError, match="manifest"):
            CampaignRunner(workers=1, resume=True)

    def test_failure_statuses_count_as_completed(self, tmp_path):
        """A quarantined/errored cell is terminal: resume must not
        re-run (or re-hang) it on every attempt."""
        specs = tiny_grid()
        bad = ScenarioSpec(topology=axis("no_such_family"), seed=9)
        root = str(tmp_path / "m")
        CampaignRunner(workers=1, manifest=root).run([bad])
        result = CampaignRunner(workers=1, manifest=root,
                                resume=True).run([bad] + specs[:1])
        assert result.resumed == 1
        assert result[0].status == "error"
        assert result[1].status == "ok"


class TestCLI:
    def test_kill_and_resume_flow(self, tmp_path):
        from repro.engine.__main__ import main

        root = str(tmp_path / "m")
        out = tmp_path / "resumed.jsonl"
        # uninterrupted reference
        ref = tmp_path / "ref.jsonl"
        assert main(["--workers", "1", "--quiet",
                     "--out", str(ref)]) == 0
        # a run that streams to the manifest, then a resume that dumps
        assert main(["--workers", "1", "--quiet",
                     "--manifest", root]) == 0
        assert main(["--workers", "1", "--quiet", "--manifest", root,
                     "--resume", "--out", str(out)]) == 0
        ref_recs = [json.loads(x) for x in ref.read_text().splitlines()]
        got_recs = [json.loads(x) for x in out.read_text().splitlines()]
        assert [deterministic(r) for r in ref_recs] == \
            [deterministic(r) for r in got_recs]

    def test_resume_flag_requires_manifest_flag(self, capsys):
        from repro.engine.__main__ import main

        with pytest.raises(SystemExit):
            main(["--resume"])
        assert "--manifest" in capsys.readouterr().err

    def test_chaos_flag_rejects_inline_workers(self, capsys):
        from repro.engine.__main__ import main

        with pytest.raises(SystemExit):
            main(["--workers", "1", "--chaos", "crash=1"])
        assert "--workers" in capsys.readouterr().err

    def test_bad_chaos_spec_is_rejected(self, capsys):
        from repro.engine.__main__ import main

        with pytest.raises(SystemExit):
            main(["--workers", "2", "--chaos", "explode=3"])
        assert "chaos" in capsys.readouterr().err
