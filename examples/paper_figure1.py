#!/usr/bin/env python3
"""Reproduce Figure 1 and Table 2 of the paper, exactly.

The 18-node example (nodes a..r) is reconstructed from Table 2; running
SYNC_MST on it regenerates the fragment hierarchy of Figure 1 and all
four label-string tables of Table 2, entry for entry.

Run:  python examples/paper_figure1.py
"""

from repro.graphs import kruskal_mst
from repro.graphs.paper_example import (ID_TO_NAME, TABLE2_ROOTS,
                                        build_paper_graph)
from repro.labels.strings import compute_node_strings, format_table2
from repro.mst import run_sync_mst


def main() -> None:
    graph = build_paper_graph()
    result = run_sync_mst(graph)
    assert result.tree.edge_set() == kruskal_mst(graph)

    print("Figure 1 — the hierarchy of active fragments")
    print("=" * 60)
    for level in range(result.hierarchy.height, -1, -1):
        frags = sorted(result.hierarchy.by_level(level),
                       key=lambda f: ID_TO_NAME[f.root])
        cells = []
        for f in frags:
            names = "".join(sorted(ID_TO_NAME[v] for v in f.nodes))
            if f.candidate_edge is None:
                cells.append("{%s}" % names)
            else:
                cells.append("{%s}-%s->" % (names, f.candidate_weight))
        print(f"  level {level}: " + "  ".join(cells))

    print()
    print("Table 2 — Roots, EndP, Parents, Or-EndP")
    print("=" * 60)
    strings = compute_node_strings(result.hierarchy)
    print(format_table2(strings, names=ID_TO_NAME))

    matches = sum(
        1 for v, s in strings.items()
        if s.roots == TABLE2_ROOTS[ID_TO_NAME[v]])
    print()
    print(f"Roots strings matching the paper: {matches}/18 "
          "(EndP/Parents/Or-EndP equality is asserted by the test suite)")


if __name__ == "__main__":
    main()
