#!/usr/bin/env python3
"""Quickstart: construct, label, verify, break, detect.

The 60-second tour of the library:

1. generate a weighted network;
2. run SYNC_MST (the paper's O(n)-time, O(log n)-bit construction);
3. run the marker to produce the proof labels;
4. run the self-stabilizing verifier — silence means "this is an MST";
5. corrupt a node and watch a nearby node raise an alarm.

Run:  python examples/quickstart.py
"""

from repro.graphs import generators, kruskal_mst
from repro.mst import run_sync_mst
from repro.sim import FaultInjector, SynchronousScheduler, first_alarm
from repro.verification import make_network, run_marker
from repro.verification.verifier import MstVerifierProtocol


def main() -> None:
    # 1. a random connected weighted network with distinct weights
    graph = generators.random_connected_graph(40, 70, seed=7)
    print(f"network: n={graph.n}, |E|={graph.m}, Delta={graph.max_degree()}")

    # 2. construct the MST
    result = run_sync_mst(graph)
    assert result.tree.edge_set() == kruskal_mst(graph)
    print(f"SYNC_MST: {result.rounds} rounds, {result.phases} phases, "
          f"hierarchy height {result.hierarchy.height}")

    # 3. the marker assigns every label register
    marker = run_marker(graph, sync_result=result)
    print(f"marker: {marker.construction_rounds} charged rounds, "
          f"{len(marker.layout.top_parts)} Top parts, "
          f"{len(marker.layout.bottom_parts)} Bottom parts")

    # 4. the verifier stays silent on the correct instance
    network = make_network(graph, marker)
    protocol = MstVerifierProtocol(synchronous=True)
    scheduler = SynchronousScheduler(network, protocol)
    scheduler.run(400)
    assert not network.alarms()
    print(f"verifier: 400 rounds, no alarms, "
          f"max memory {network.max_memory_bits()} bits/node")

    # 5. corrupt one node; detection follows within O(log^2 n) rounds
    injector = FaultInjector(network, seed=1)
    victim = graph.nodes()[11]
    injector.corrupt_node(victim, fraction=0.5)
    rounds = scheduler.run(5_000, stop_when=first_alarm)
    alarms = network.alarms()
    assert alarms
    node, reason = next(iter(alarms.items()))
    dist = graph.bfs_distances(victim).get(node)
    print(f"fault at node {victim}: detected after {rounds} rounds "
          f"at node {node} (distance {dist})")
    print(f"  reason: {reason}")


if __name__ == "__main__":
    main()
