#!/usr/bin/env python3
"""Self-stabilizing MST construction (Theorem 10.2).

Demonstrates the transformer loop from three starting states:

* a cold start (empty registers),
* an adversarial start (garbage in every register),
* a post-stabilization transient fault.

Each time the verifier detects, a reset wave floods the network, the
construction re-runs, and the system returns to a silently verified MST.

Run:  python examples/self_stabilization.py
"""

import random

from repro.graphs import generators, kruskal_mst
from repro.selfstab import (Resynchronizer, current_output_edges,
                            mst_checker)
from repro.sim import FaultInjector, Network
from repro.trains.budgets import compute_budgets


def describe(tag, net, trace, mst):
    edges = current_output_edges(net)
    state = "MST" if edges == mst else f"WRONG ({len(edges)} edges)"
    print(f"  [{tag}] output={state}  cumulative: resets={trace.reset_waves}"
          f"  rounds={trace.total_rounds} "
          f"(constr {trace.construction_rounds}"
          f" + verify {trace.verification_rounds})")


def main() -> None:
    graph = generators.random_connected_graph(24, 40, seed=3)
    mst = kruskal_mst(graph)
    budgets = compute_budgets(graph.n, True, degree=graph.max_degree())
    window = 2 * budgets.ask_alarm

    print(f"network: n={graph.n}, |E|={graph.m}")

    print("cold start (empty registers):")
    net = Network(graph)
    resync = Resynchronizer(net, mst_checker(synchronous=True,
                                             static_every=2),
                            synchronous=True)
    trace = resync.run_until_stable(window)
    describe("stabilized", net, trace, mst)

    print("adversarial start (garbage registers):")
    rng = random.Random(0)
    net2 = Network(graph)
    net2.install({
        v: {"pid": rng.randrange(graph.n), "n": rng.randrange(99),
            "roots": "10*1", "tt_bbuf": 7, "dist": rng.randrange(5)}
        for v in graph.nodes()
    })
    resync2 = Resynchronizer(net2, mst_checker(synchronous=True,
                                               static_every=2),
                             synchronous=True)
    trace2 = resync2.run_until_stable(window)
    describe("stabilized", net2, trace2, mst)

    print("post-stabilization fault:")
    injector = FaultInjector(net2, seed=5)
    victim = graph.nodes()[9]
    injector.corrupt_node(victim, fraction=0.6)
    trace3 = resync2.run_until_stable(window)
    describe("recovered", net2, trace3, mst)
    if trace3.detections:
        rnd, node, reason = trace3.detections[-1]
        print(f"  detection at node {node}: {reason}")


if __name__ == "__main__":
    main()
