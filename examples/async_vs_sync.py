#!/usr/bin/env python3
"""Synchronous vs asynchronous verification, across daemons.

Runs the same detection experiment (a minimality lie on a stored piece)
under the synchronous scheduler and several asynchronous daemons —
including an adversarial one that slows down a subset of nodes — and
reports detection times in rounds.

Run:  python examples/async_vs_sync.py
"""

from repro.graphs import generators
from repro.sim import PermutationDaemon, RandomDaemon, SlowNodesDaemon
from repro.verification import run_detection


def lie(net, inj):
    for reg in ("pc_bot", "pc_top"):
        for v in net.graph.nodes():
            pieces = net.registers[v].get(reg) or ()
            if pieces:
                z, lvl, w = pieces[0]
                inj.corrupt_register(
                    v, reg, ((z, lvl, (w or 0) + 1),) + tuple(pieces[1:]))
                return


def main() -> None:
    graph = generators.bounded_degree_graph(32, 5, seed=6)
    print(f"network: n={graph.n}, |E|={graph.m}, Delta={graph.max_degree()}")
    print(f"{'execution':<34} {'detected':<9} {'rounds':<7}")

    cases = [
        ("synchronous", True, None),
        ("async / permutation daemon", False, PermutationDaemon(seed=1)),
        ("async / random daemon", False, RandomDaemon(seed=2)),
        ("async / 4 slow nodes (x5)", False,
         SlowNodesDaemon(graph.nodes()[:4], slowdown=5, seed=3)),
    ]
    for name, sync, daemon in cases:
        res = run_detection(graph, lie, synchronous=sync, daemon=daemon,
                            max_rounds=200_000, static_every=4, seed=4)
        print(f"{name:<34} {'yes' if res.detected else 'NO':<9} "
              f"{res.rounds_to_detection}")

    print("\nasynchronous rounds count full activation coverage; the "
          "adversarial daemon stretches wall-clock activations, not "
          "rounds — detection stays within the O(Delta log^3 n) budget.")


if __name__ == "__main__":
    main()
