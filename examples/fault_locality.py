#!/usr/bin/env python3
"""Fault locality: detection happens near the faults (Theorem 8.5).

Injects f faults at far-apart nodes of a grid network and reports, for
each fault, the closest alarming node — illustrating the O(f log n)
detection-distance property that enables fault containment (the paper's
ARPANET motivation).

Run:  python examples/fault_locality.py
"""

from repro.graphs import generators
from repro.sim import FaultInjector, SynchronousScheduler, first_alarm
from repro.verification import make_network
from repro.verification.verifier import MstVerifierProtocol


def main() -> None:
    graph = generators.grid_graph(8, 12, seed=2)
    print(f"grid network: n={graph.n}, diameter={graph.diameter()}")

    network = make_network(graph)
    protocol = MstVerifierProtocol(synchronous=True, static_every=2)
    scheduler = SynchronousScheduler(network, protocol)
    scheduler.run(600)
    assert not network.alarms()

    injector = FaultInjector(network, seed=4)
    corners = [0, graph.n - 1]           # two far-apart victims
    for v in corners:
        injector.corrupt_node(v, fraction=0.6)
    print(f"faults injected at {corners} "
          f"(distance {graph.bfs_distances(corners[0])[corners[1]]} apart)")

    scheduler.run(20_000, stop_when=first_alarm)
    # run a little longer to let alarms accumulate near both faults
    scheduler.run(protocol.budgets_for(
        _ctx(network, protocol)).node_alarm)

    alarms = network.alarms()
    print(f"{len(alarms)} alarming node(s)")
    for fault in corners:
        dist = graph.bfs_distances(fault)
        best = min(alarms, key=lambda a: dist.get(a, 10 ** 9))
        print(f"  fault {fault}: closest alarm at node {best} "
              f"(distance {dist[best]}) — {alarms[best][:60]}")


def _ctx(network, protocol):
    # storage-matched context (the protocol may hold slot handles)
    return network.local_context(network.graph.nodes()[0])


if __name__ == "__main__":
    main()
