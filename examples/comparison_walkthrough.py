#!/usr/bin/env python3
"""The Ask/Show/Want walk-through of Figures 4-9.

Replays the paper's illustration of the asynchronous comparison
mechanism on a small network: a node v holds a piece in Ask, reads its
neighbour's Show, files a Want request when the levels don't match, and
compares once the requested piece arrives — all while the trains keep
rotating.

Run:  python examples/comparison_walkthrough.py
"""

from repro.graphs import generators
from repro.sim import AsynchronousScheduler, PermutationDaemon
from repro.trains.comparison import REG_ASK, REG_WANT
from repro.verification import make_network
from repro.verification.verifier import MstVerifierProtocol


def fmt_piece(piece):
    if piece is None:
        return "-"
    z, lvl, w = piece
    return f"I(root={z},lvl={lvl},w={w})"


def main() -> None:
    graph = generators.random_connected_graph(14, 22, seed=9)
    network = make_network(graph)
    protocol = MstVerifierProtocol(synchronous=False, static_every=4)
    scheduler = AsynchronousScheduler(network, protocol,
                                      PermutationDaemon(seed=1))

    v = graph.nodes()[3]
    u = graph.neighbors(v)[0]
    print(f"watching node v={v} (neighbour u={u}) — Figures 4-9 replay\n")
    print(f"{'round':>5}  {'Ask(v)':<24} {'Want(v)':<12} "
          f"{'Show(u) top':<28} flag")

    last = None
    events = 0
    scheduler.initialize()
    for rnd in range(1, 2500):
        scheduler.run(1)
        ask = network.registers[v].get(REG_ASK)
        want = network.registers[v].get(REG_WANT)
        show = network.registers[u].get("tt_bbuf")
        show_piece, show_flag = (show if isinstance(show, tuple) else
                                 (None, False))
        state = (ask, want, show_piece)
        if state != last:
            print(f"{rnd:>5}  {fmt_piece(ask):<24} "
                  f"{str(want):<12} {fmt_piece(show_piece):<28} "
                  f"{'on' if show_flag else 'off'}")
            last = state
            events += 1
            if events >= 28:
                break

    assert not network.alarms(), network.alarms()
    print("\nno alarms: every comparison E(v,u,j) succeeded "
          "(a correct instance)")


if __name__ == "__main__":
    main()
