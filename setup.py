"""Setuptools shim — enables editable installs on environments whose pip
cannot build PEP 660 wheels (no `wheel` package available offline)."""

from setuptools import setup

setup()
